//! Deterministic finite automata.
//!
//! For a DFA, `#DFA` is easy: every word has at most one run, so a linear
//! DP over levels counts exactly. The exponential step is determinization
//! itself — which is the whole story of why #NFA needs an FPRAS. This
//! module provides capped subset construction, the linear counting DP and
//! Moore minimization; the baselines crate wires them up as the
//! "determinize-then-count" exact comparator.

use crate::alphabet::{Alphabet, Symbol};
use crate::exact::ExactError;
use crate::nfa::{Nfa, NfaBuilder, StateId};
use crate::stateset::StateSet;
use crate::word::Word;
use fpras_numeric::BigUint;
use std::collections::HashMap;

/// A (partial) deterministic finite automaton; missing transitions are
/// implicit dead ends.
#[derive(Clone, Debug)]
pub struct Dfa {
    alphabet: Alphabet,
    initial: StateId,
    accepting: StateSet,
    /// `trans[q][sym]` = successor, if any.
    trans: Vec<Vec<Option<StateId>>>,
}

impl Dfa {
    /// Subset construction with a cap on the number of DFA states.
    pub fn determinize(nfa: &Nfa, cap: usize) -> Result<Dfa, ExactError> {
        let k = nfa.alphabet().size();
        let mut index: HashMap<StateSet, StateId> = HashMap::new();
        let start = StateSet::singleton(nfa.num_states(), nfa.initial() as usize);
        index.insert(start.clone(), 0);
        let mut subsets = vec![start];
        let mut trans: Vec<Vec<Option<StateId>>> = Vec::new();
        let mut accepting_states = Vec::new();
        let mut next = 0usize;
        while next < subsets.len() {
            let subset = subsets[next].clone();
            if subset.intersects(nfa.accepting()) {
                accepting_states.push(next as StateId);
            }
            let mut row = vec![None; k];
            for (sym, slot) in row.iter_mut().enumerate() {
                let target = nfa.step(&subset, sym as Symbol);
                if target.is_empty() {
                    continue;
                }
                let id = match index.get(&target) {
                    Some(&id) => id,
                    None => {
                        if subsets.len() >= cap {
                            return Err(ExactError::SubsetBlowup { level: next, cap });
                        }
                        let id = subsets.len() as StateId;
                        index.insert(target.clone(), id);
                        subsets.push(target);
                        id
                    }
                };
                *slot = Some(id);
            }
            trans.push(row);
            next += 1;
        }
        Ok(Dfa {
            alphabet: nfa.alphabet().clone(),
            initial: 0,
            accepting: StateSet::from_iter(
                subsets.len(),
                accepting_states.iter().map(|&q| q as usize),
            ),
            trans,
        })
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// True iff `q` is accepting.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting.contains(q as usize)
    }

    /// The transition `δ(q, sym)`, if present.
    pub fn next_state(&self, q: StateId, sym: Symbol) -> Option<StateId> {
        self.trans[q as usize][sym as usize]
    }

    /// True iff `word ∈ L(D)`.
    pub fn accepts(&self, word: &Word) -> bool {
        let mut q = self.initial;
        for &sym in word.symbols() {
            match self.next_state(q, sym) {
                Some(t) => q = t,
                None => return false,
            }
        }
        self.is_accepting(q)
    }

    /// Exact `|L(D_n)|` by the linear DP (`O(n·|states|·k)` big-int adds).
    pub fn count_slice(&self, n: usize) -> BigUint {
        let m = self.num_states();
        let k = self.alphabet.size();
        let mut cur = vec![BigUint::zero(); m];
        cur[self.initial as usize] = BigUint::one();
        for _ in 0..n {
            let mut nxt = vec![BigUint::zero(); m];
            for (q, c) in cur.iter().enumerate() {
                if c.is_zero() {
                    continue;
                }
                for sym in 0..k {
                    if let Some(t) = self.trans[q][sym] {
                        nxt[t as usize] += c;
                    }
                }
            }
            cur = nxt;
        }
        cur.iter()
            .enumerate()
            .filter(|(q, _)| self.accepting.contains(*q))
            .map(|(_, c)| c.clone())
            .sum()
    }

    /// Moore minimization (partition refinement).
    ///
    /// Completes the automaton with a sink first so the classic algorithm
    /// applies, then strips the sink back out if it survived as dead.
    #[allow(clippy::needless_range_loop)] // loops index several tables at once
    pub fn minimize(&self) -> Dfa {
        let k = self.alphabet.size();
        let m = self.num_states() + 1; // + sink
        let sink = m - 1;
        let step = |q: usize, sym: usize| -> usize {
            if q == sink {
                sink
            } else {
                self.trans[q][sym].map_or(sink, |t| t as usize)
            }
        };
        // Initial partition: accepting vs not.
        let mut class = vec![0usize; m];
        for q in 0..m {
            class[q] = if q != sink && self.accepting.contains(q) { 1 } else { 0 };
        }
        loop {
            // Signature: (class, class of each successor).
            let mut sig_index: HashMap<Vec<usize>, usize> = HashMap::new();
            let mut next_class = vec![0usize; m];
            for q in 0..m {
                let mut sig = Vec::with_capacity(k + 1);
                sig.push(class[q]);
                for sym in 0..k {
                    sig.push(class[step(q, sym)]);
                }
                let len = sig_index.len();
                next_class[q] = *sig_index.entry(sig).or_insert(len);
            }
            let stable = {
                // Same partition iff classes induce the same blocks.
                let mut mapping: HashMap<usize, usize> = HashMap::new();
                let mut same = true;
                for q in 0..m {
                    match mapping.get(&class[q]) {
                        Some(&c) if c != next_class[q] => {
                            same = false;
                            break;
                        }
                        None => {
                            mapping.insert(class[q], next_class[q]);
                        }
                        _ => {}
                    }
                }
                same && mapping.len()
                    == next_class.iter().collect::<std::collections::HashSet<_>>().len()
            };
            class = next_class;
            if stable {
                break;
            }
        }
        // Build the quotient, dropping the sink's class when dead.
        let sink_class = class[sink];
        let num_classes = class.iter().collect::<std::collections::HashSet<_>>().len();
        let mut remap = vec![usize::MAX; num_classes];
        let mut n_out = 0usize;
        for q in 0..m {
            let c = class[q];
            if c != sink_class && remap[c] == usize::MAX {
                remap[c] = n_out;
                n_out += 1;
            }
        }
        // If the sink class contains a real accepting state it must be kept
        // (cannot happen: sink is non-accepting and classes separate by
        // acceptance). Build tables.
        let mut trans = vec![vec![None; k]; n_out];
        let mut accepting = StateSet::empty(n_out);
        for q in 0..m - 1 {
            let c = class[q];
            if c == sink_class {
                continue;
            }
            let nq = remap[c];
            if self.accepting.contains(q) {
                accepting.insert(nq);
            }
            for sym in 0..k {
                let t = step(q, sym);
                if class[t] != sink_class {
                    trans[nq][sym] = Some(remap[class[t]] as StateId);
                }
            }
        }
        // Initial state's class can be the sink class only if the language
        // is empty; represent that with a single dead state.
        if class[self.initial as usize] == sink_class {
            return Dfa {
                alphabet: self.alphabet.clone(),
                initial: 0,
                accepting: StateSet::empty(1),
                trans: vec![vec![None; k]],
            };
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            initial: remap[class[self.initial as usize]] as StateId,
            accepting,
            trans,
        }
    }

    /// Views the DFA as an [`Nfa`] (every DFA is one).
    ///
    /// Returns `None` when the DFA accepts nothing (an NFA must declare an
    /// accepting state).
    pub fn to_nfa(&self) -> Option<Nfa> {
        if self.accepting.is_empty() {
            return None;
        }
        let mut b = NfaBuilder::new(self.alphabet.clone());
        b.add_states(self.num_states());
        b.set_initial(self.initial);
        for q in self.accepting.iter() {
            b.add_accepting(q as StateId);
        }
        for (q, row) in self.trans.iter().enumerate() {
            for (sym, target) in row.iter().enumerate() {
                if let Some(t) = target {
                    b.add_transition(q as StateId, sym as Symbol, *t);
                }
            }
        }
        b.build().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_exact;

    fn contains_11() -> Nfa {
        let mut b = NfaBuilder::new(Alphabet::binary());
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q2);
        b.add_transition(q0, 0, q0);
        b.add_transition(q0, 1, q0);
        b.add_transition(q0, 1, q1);
        b.add_transition(q1, 1, q2);
        b.add_transition(q2, 0, q2);
        b.add_transition(q2, 1, q2);
        b.build().unwrap()
    }

    #[test]
    fn determinize_preserves_language() {
        let nfa = contains_11();
        let dfa = Dfa::determinize(&nfa, 1 << 10).unwrap();
        for n in 0..=7usize {
            for idx in 0..(1u64 << n) {
                let w = Word::from_index(idx, n, 2);
                assert_eq!(dfa.accepts(&w), nfa.accepts(&w), "word {w:?}");
            }
        }
    }

    #[test]
    fn dfa_count_matches_exact() {
        let nfa = contains_11();
        let dfa = Dfa::determinize(&nfa, 1 << 10).unwrap();
        for n in 0..=12usize {
            assert_eq!(dfa.count_slice(n), count_exact(&nfa, n).unwrap(), "n={n}");
        }
    }

    #[test]
    fn determinize_cap() {
        let nfa = contains_11();
        assert!(matches!(Dfa::determinize(&nfa, 1), Err(ExactError::SubsetBlowup { .. })));
    }

    #[test]
    fn minimize_preserves_language_and_shrinks() {
        let nfa = contains_11();
        let dfa = Dfa::determinize(&nfa, 1 << 10).unwrap();
        let min = dfa.minimize();
        assert!(min.num_states() <= dfa.num_states());
        for n in 0..=7usize {
            for idx in 0..(1u64 << n) {
                let w = Word::from_index(idx, n, 2);
                assert_eq!(min.accepts(&w), dfa.accepts(&w), "word {w:?}");
            }
        }
        // The canonical minimal DFA for "contains 11" has 3 states.
        assert_eq!(min.num_states(), 3);
    }

    #[test]
    fn minimize_empty_language() {
        // DFA with unreachable accepting state.
        let dfa = Dfa {
            alphabet: Alphabet::binary(),
            initial: 0,
            accepting: StateSet::from_iter(2, [1]),
            trans: vec![vec![Some(0), Some(0)], vec![Some(1), Some(1)]],
        };
        let min = dfa.minimize();
        for n in 0..=4usize {
            assert!(min.count_slice(n).is_zero());
        }
    }

    #[test]
    fn to_nfa_round_trip_counts() {
        let nfa = contains_11();
        let dfa = Dfa::determinize(&nfa, 1 << 10).unwrap();
        let back = dfa.to_nfa().unwrap();
        for n in 0..=8usize {
            assert_eq!(count_exact(&back, n).unwrap(), count_exact(&nfa, n).unwrap());
        }
    }
}
