//! Regular expressions compiled to NFAs.
//!
//! Realistic #NFA instances come from query languages: SPARQL property
//! paths and RPQs compile regexes into NFAs (paper §1, "Counting Answers
//! to Regular Path Queries"). This module supplies a small but complete
//! pipeline: a hand-rolled recursive-descent parser, a Thompson ε-NFA
//! construction, ε-elimination and trimming. Supported syntax:
//!
//! ```text
//! alt     := concat ('|' concat)*
//! concat  := rep*
//! rep     := atom ('*' | '+' | '?' | '{m}' | '{m,n}')*
//! atom    := symbol | '.' | '[' chars ']' | '[^' chars ']' | '(' alt ')'
//! ```
//!
//! Symbols are single characters drawn from the target [`Alphabet`].

use crate::alphabet::{Alphabet, Symbol};
use crate::nfa::{Nfa, NfaBuilder, StateId};
use crate::ops;
use std::fmt;

/// Regular-expression abstract syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// Matches only the empty word λ.
    Empty,
    /// Matches a single symbol.
    Symbol(Symbol),
    /// Matches any one of a set of symbols (`[abc]`, `[^a]`, `.`).
    Class(Vec<Symbol>),
    /// Concatenation.
    Concat(Vec<Regex>),
    /// Alternation.
    Alt(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One or more.
    Plus(Box<Regex>),
    /// Zero or one.
    Opt(Box<Regex>),
    /// Bounded repetition `{lo}` / `{lo,hi}`.
    Repeat(Box<Regex>, usize, usize),
}

/// Parse / compile errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset of the error in the pattern.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RegexError {}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    alphabet: &'a Alphabet,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, RegexError> {
        Err(RegexError { position: self.pos, message: message.into() })
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alt(&mut self) -> Result<Regex, RegexError> {
        let mut arms = vec![self.parse_concat()?];
        while self.eat('|') {
            arms.push(self.parse_concat()?);
        }
        Ok(if arms.len() == 1 { arms.pop().unwrap() } else { Regex::Alt(arms) })
    }

    fn parse_concat(&mut self) -> Result<Regex, RegexError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_rep()?);
        }
        Ok(match parts.len() {
            0 => Regex::Empty,
            1 => parts.pop().unwrap(),
            _ => Regex::Concat(parts),
        })
    }

    fn parse_rep(&mut self) -> Result<Regex, RegexError> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    atom = Regex::Star(Box::new(atom));
                }
                Some('+') => {
                    self.pos += 1;
                    atom = Regex::Plus(Box::new(atom));
                }
                Some('?') => {
                    self.pos += 1;
                    atom = Regex::Opt(Box::new(atom));
                }
                Some('{') => {
                    self.pos += 1;
                    let lo = self.parse_number()?;
                    let hi = if self.eat(',') { self.parse_number()? } else { lo };
                    if !self.eat('}') {
                        return self.err("expected '}'");
                    }
                    if hi < lo {
                        return self.err(format!("invalid repetition {{{lo},{hi}}}"));
                    }
                    atom = Regex::Repeat(Box::new(atom), lo, hi);
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_number(&mut self) -> Result<usize, RegexError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected number");
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse().map_err(|_| RegexError { position: start, message: "number too large".into() })
    }

    fn parse_atom(&mut self) -> Result<Regex, RegexError> {
        match self.peek() {
            None => self.err("unexpected end of pattern"),
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_alt()?;
                if !self.eat(')') {
                    return self.err("expected ')'");
                }
                Ok(inner)
            }
            Some('.') => {
                self.pos += 1;
                Ok(Regex::Class(self.alphabet.symbols().collect()))
            }
            Some('[') => {
                self.pos += 1;
                let negate = self.eat('^');
                let mut listed = Vec::new();
                loop {
                    match self.bump() {
                        None => return self.err("unterminated class"),
                        Some(']') => break,
                        Some(c) => match self.alphabet.symbol(c) {
                            Some(s) => listed.push(s),
                            None => return self.err(format!("symbol {c:?} not in alphabet")),
                        },
                    }
                }
                let class: Vec<Symbol> = if negate {
                    self.alphabet.symbols().filter(|s| !listed.contains(s)).collect()
                } else {
                    listed
                };
                if class.is_empty() {
                    return self.err("empty character class");
                }
                Ok(Regex::Class(class))
            }
            Some(c @ ('*' | '+' | '?' | '{' | '}' | ']' | ')' | '|')) => {
                self.err(format!("unexpected {c:?}"))
            }
            Some(c) => {
                self.pos += 1;
                match self.alphabet.symbol(c) {
                    Some(s) => Ok(Regex::Symbol(s)),
                    None => self.err(format!("symbol {c:?} not in alphabet")),
                }
            }
        }
    }
}

impl Regex {
    /// Parses a pattern over the given alphabet.
    pub fn parse(pattern: &str, alphabet: &Alphabet) -> Result<Regex, RegexError> {
        let mut p = Parser { chars: pattern.chars().collect(), pos: 0, alphabet };
        let re = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return p.err("trailing input");
        }
        Ok(re)
    }

    /// Renders the AST back to pattern syntax over the given alphabet.
    ///
    /// Parsing the result yields an equivalent AST (`parse ∘ to_pattern`
    /// preserves the language; the tree shape may differ through
    /// flattening of nested concatenations/alternations).
    pub fn to_pattern(&self, alphabet: &Alphabet) -> String {
        // Precedence levels: alt(0) < concat(1) < repetition(2) < atom(3).
        fn go(re: &Regex, alphabet: &Alphabet, out: &mut String, parent_prec: u8) {
            let prec = match re {
                Regex::Alt(_) => 0,
                Regex::Concat(_) => 1,
                Regex::Star(_) | Regex::Plus(_) | Regex::Opt(_) | Regex::Repeat(..) => 2,
                Regex::Empty | Regex::Symbol(_) | Regex::Class(_) => 3,
            };
            let need_parens = prec < parent_prec || matches!(re, Regex::Empty) && parent_prec > 0;
            if need_parens {
                out.push('(');
            }
            match re {
                Regex::Empty => {}
                Regex::Symbol(s) => out.push(alphabet.name(*s)),
                Regex::Class(syms) => {
                    if syms.len() == alphabet.size() {
                        out.push('.');
                    } else {
                        out.push('[');
                        for &s in syms {
                            out.push(alphabet.name(s));
                        }
                        out.push(']');
                    }
                }
                Regex::Concat(parts) => {
                    for p in parts {
                        go(p, alphabet, out, 1);
                    }
                }
                Regex::Alt(arms) => {
                    for (i, a) in arms.iter().enumerate() {
                        if i > 0 {
                            out.push('|');
                        }
                        go(a, alphabet, out, 0);
                    }
                }
                Regex::Star(inner) => {
                    go(inner, alphabet, out, 3);
                    out.push('*');
                }
                Regex::Plus(inner) => {
                    go(inner, alphabet, out, 3);
                    out.push('+');
                }
                Regex::Opt(inner) => {
                    go(inner, alphabet, out, 3);
                    out.push('?');
                }
                Regex::Repeat(inner, lo, hi) => {
                    go(inner, alphabet, out, 3);
                    if lo == hi {
                        out.push_str(&format!("{{{lo}}}"));
                    } else {
                        out.push_str(&format!("{{{lo},{hi}}}"));
                    }
                }
            }
            if need_parens {
                out.push(')');
            }
        }
        let mut out = String::new();
        go(self, alphabet, &mut out, 0);
        out
    }

    /// Reference matcher used to validate the compiled NFA in tests:
    /// straightforward recursive semantics, exponential in the worst case.
    pub fn matches(&self, word: &[Symbol]) -> bool {
        match self {
            Regex::Empty => word.is_empty(),
            Regex::Symbol(s) => word == [*s],
            Regex::Class(cs) => word.len() == 1 && cs.contains(&word[0]),
            Regex::Concat(parts) => matches_seq(parts, word),
            Regex::Alt(arms) => arms.iter().any(|a| a.matches(word)),
            Regex::Star(inner) => {
                word.is_empty()
                    || (1..=word.len())
                        .any(|k| inner.matches(&word[..k]) && self.matches(&word[k..]))
            }
            Regex::Plus(inner) => (1..=word.len()).any(|k| {
                inner.matches(&word[..k]) && Regex::Star(inner.clone()).matches(&word[k..])
            }),
            Regex::Opt(inner) => word.is_empty() || inner.matches(word),
            Regex::Repeat(inner, lo, hi) => {
                fn rep(inner: &Regex, count_min: usize, count_max: usize, word: &[Symbol]) -> bool {
                    if count_min == 0 && word.is_empty() {
                        return true;
                    }
                    if count_max == 0 {
                        return word.is_empty() && count_min == 0;
                    }
                    let start = if count_min == 0 { 0 } else { 1 };
                    if count_min == 0 && word.is_empty() {
                        return true;
                    }
                    for k in start.max(1)..=word.len().max(1) {
                        if k > word.len() {
                            break;
                        }
                        if inner.matches(&word[..k])
                            && rep(inner, count_min.saturating_sub(1), count_max - 1, &word[k..])
                        {
                            return true;
                        }
                    }
                    // Inner may also match λ.
                    if inner.matches(&[]) && count_min > 0 {
                        return rep(inner, count_min - 1, count_max - 1, word);
                    }
                    count_min == 0 && word.is_empty()
                }
                rep(inner, *lo, *hi, word)
            }
        }
    }

    /// Compiles to a trimmed NFA via Thompson construction and
    /// ε-elimination.
    ///
    /// Returns `None` when the language is empty of useful states — which
    /// cannot happen for syntactically valid patterns, so the public
    /// [`compile_regex`] unwraps it.
    fn compile(&self, alphabet: &Alphabet) -> Option<Nfa> {
        let mut eps = EpsNfa::new();
        let (start, end) = eps.insert(self);
        eps.to_nfa(alphabet, start, end)
    }
}

fn matches_seq(parts: &[Regex], word: &[Symbol]) -> bool {
    match parts {
        [] => word.is_empty(),
        [first, rest @ ..] => {
            (0..=word.len()).any(|k| first.matches(&word[..k]) && matches_seq(rest, &word[k..]))
        }
    }
}

/// Compiles a pattern directly to a trimmed [`Nfa`].
///
/// The resulting automaton accepts exactly the pattern's language, except
/// that an NFA cannot represent the *totally* empty language without a
/// dummy accepting state — patterns always match something, so this does
/// not arise from parsing.
pub fn compile_regex(pattern: &str, alphabet: &Alphabet) -> Result<Nfa, RegexError> {
    let re = Regex::parse(pattern, alphabet)?;
    re.compile(alphabet)
        .ok_or(RegexError { position: 0, message: "pattern denotes the empty language".into() })
}

/// Thompson ε-NFA under construction.
struct EpsNfa {
    num_states: usize,
    eps: Vec<(usize, usize)>,
    trans: Vec<(usize, Symbol, usize)>,
}

impl EpsNfa {
    fn new() -> Self {
        EpsNfa { num_states: 0, eps: Vec::new(), trans: Vec::new() }
    }

    fn fresh(&mut self) -> usize {
        self.num_states += 1;
        self.num_states - 1
    }

    /// Inserts the fragment for `re`, returning `(start, end)`.
    fn insert(&mut self, re: &Regex) -> (usize, usize) {
        match re {
            Regex::Empty => {
                let s = self.fresh();
                (s, s)
            }
            Regex::Symbol(sym) => {
                let s = self.fresh();
                let e = self.fresh();
                self.trans.push((s, *sym, e));
                (s, e)
            }
            Regex::Class(syms) => {
                let s = self.fresh();
                let e = self.fresh();
                for &sym in syms {
                    self.trans.push((s, sym, e));
                }
                (s, e)
            }
            Regex::Concat(parts) => {
                let s = self.fresh();
                let mut cur = s;
                for p in parts {
                    let (ps, pe) = self.insert(p);
                    self.eps.push((cur, ps));
                    cur = pe;
                }
                (s, cur)
            }
            Regex::Alt(arms) => {
                let s = self.fresh();
                let e = self.fresh();
                for a in arms {
                    let (as_, ae) = self.insert(a);
                    self.eps.push((s, as_));
                    self.eps.push((ae, e));
                }
                (s, e)
            }
            Regex::Star(inner) => {
                let s = self.fresh();
                let e = self.fresh();
                let (is, ie) = self.insert(inner);
                self.eps.push((s, e));
                self.eps.push((s, is));
                self.eps.push((ie, is));
                self.eps.push((ie, e));
                (s, e)
            }
            Regex::Plus(inner) => {
                let (is, ie) = self.insert(inner);
                let e = self.fresh();
                self.eps.push((ie, is));
                self.eps.push((ie, e));
                (is, e)
            }
            Regex::Opt(inner) => {
                let s = self.fresh();
                let e = self.fresh();
                let (is, ie) = self.insert(inner);
                self.eps.push((s, is));
                self.eps.push((ie, e));
                self.eps.push((s, e));
                (s, e)
            }
            Regex::Repeat(inner, lo, hi) => {
                // Unfold: lo mandatory copies then (hi - lo) optional ones.
                let s = self.fresh();
                let mut cur = s;
                for _ in 0..*lo {
                    let (is, ie) = self.insert(inner);
                    self.eps.push((cur, is));
                    cur = ie;
                }
                let e = self.fresh();
                for _ in *lo..*hi {
                    let (is, ie) = self.insert(inner);
                    self.eps.push((cur, is));
                    self.eps.push((cur, e)); // skip remaining copies
                    cur = ie;
                }
                self.eps.push((cur, e));
                (s, e)
            }
        }
    }

    /// ε-closure of one state.
    fn closure(&self, adj: &[Vec<usize>], q: usize) -> Vec<usize> {
        let mut seen = vec![false; self.num_states];
        let mut stack = vec![q];
        seen[q] = true;
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            out.push(v);
            for &t in &adj[v] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        out
    }

    /// Eliminates ε-transitions and trims.
    #[allow(clippy::needless_range_loop)] // q indexes both closures and the builder
    fn to_nfa(&self, alphabet: &Alphabet, start: usize, end: usize) -> Option<Nfa> {
        let mut adj = vec![Vec::new(); self.num_states];
        for &(a, b) in &self.eps {
            adj[a].push(b);
        }
        let closures: Vec<Vec<usize>> =
            (0..self.num_states).map(|q| self.closure(&adj, q)).collect();

        let mut b = NfaBuilder::new(alphabet.clone());
        b.add_states(self.num_states);
        b.set_initial(start as StateId);
        // q accepting iff end ∈ closure(q).
        for q in 0..self.num_states {
            if closures[q].contains(&end) {
                b.add_accepting(q as StateId);
            }
        }
        // q --sym--> r  iff  ∃ p ∈ closure(q) with (p, sym, r) ∈ Δ.
        for q in 0..self.num_states {
            for &p in &closures[q] {
                for &(f, sym, t) in &self.trans {
                    if f == p {
                        b.add_transition(q as StateId, sym, t as StateId);
                    }
                }
            }
        }
        let nfa = b.build().ok()?;
        ops::trim(&nfa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_exact;
    use crate::word::Word;
    use proptest::prelude::*;

    fn check_pattern(pattern: &str, max_len: usize) {
        let alphabet = Alphabet::binary();
        let re = Regex::parse(pattern, &alphabet).unwrap();
        let nfa = compile_regex(pattern, &alphabet).unwrap();
        for n in 0..=max_len {
            for idx in 0..(2u64.pow(n as u32)) {
                let w = Word::from_index(idx, n, 2);
                assert_eq!(
                    nfa.accepts(&w),
                    re.matches(w.symbols()),
                    "pattern {pattern:?}, word {w:?}"
                );
            }
        }
    }

    #[test]
    fn literal() {
        check_pattern("0110", 5);
    }

    #[test]
    fn alternation() {
        check_pattern("01|10|11", 4);
    }

    #[test]
    fn star_and_plus() {
        check_pattern("0*1+", 6);
        check_pattern("(01)*", 6);
    }

    #[test]
    fn optional() {
        check_pattern("1?0?1", 4);
    }

    #[test]
    fn dot_and_classes() {
        check_pattern(".1.", 4);
        check_pattern("[01]1[1]", 4);
        check_pattern("[^0]*", 5);
    }

    #[test]
    fn bounded_repetition() {
        check_pattern("1{3}", 5);
        check_pattern("(0|1){2,4}", 5);
        check_pattern("0{0,2}1", 4);
    }

    #[test]
    fn nested() {
        check_pattern("((0|1)0)*1?", 6);
        check_pattern("(0*|1*)(01)+", 6);
    }

    #[test]
    fn empty_pattern_matches_lambda() {
        let alphabet = Alphabet::binary();
        let nfa = compile_regex("", &alphabet).unwrap();
        assert!(nfa.accepts(&Word::empty()));
        assert_eq!(count_exact(&nfa, 0).unwrap().to_u64(), Some(1));
        assert_eq!(count_exact(&nfa, 1).unwrap().to_u64(), Some(0));
    }

    #[test]
    fn count_via_regex() {
        // Words of length 8 starting with 1: 2^7 = 128.
        let alphabet = Alphabet::binary();
        let nfa = compile_regex("1(0|1)*", &alphabet).unwrap();
        assert_eq!(count_exact(&nfa, 8).unwrap().to_u64(), Some(128));
    }

    #[test]
    fn larger_alphabet() {
        let alphabet = Alphabet::of_size(3);
        let nfa = compile_regex("a(b|c)*a", &alphabet).unwrap();
        let w = Word::parse("abcba", &alphabet).unwrap();
        assert!(nfa.accepts(&w));
        assert!(!nfa.accepts(&Word::parse("abc", &alphabet).unwrap()));
    }

    #[test]
    fn parse_errors() {
        let a = Alphabet::binary();
        assert!(Regex::parse("(01", &a).is_err());
        assert!(Regex::parse("01)", &a).is_err());
        assert!(Regex::parse("*", &a).is_err());
        assert!(Regex::parse("[2]", &a).is_err());
        assert!(Regex::parse("[", &a).is_err());
        assert!(Regex::parse("1{3,1}", &a).is_err());
        assert!(Regex::parse("x", &a).is_err());
        assert!(Regex::parse("[^01]", &a).is_err()); // empty class
    }

    #[test]
    fn error_reports_position() {
        let a = Alphabet::binary();
        let err = Regex::parse("01x1", &a).unwrap_err();
        assert_eq!(err.position, 3); // pos advanced past 'x'
        assert!(err.to_string().contains("not in alphabet"));
    }

    #[test]
    fn to_pattern_round_trips_named_cases() {
        let a = Alphabet::binary();
        for pattern in [
            "0110",
            "01|10|11",
            "0*1+",
            "(01)*",
            "1?0?1",
            ".1.",
            "[01]1[1]",
            "[^0]*",
            "1{3}",
            "(0|1){2,4}",
            "((0|1)0)*1?",
            "(0*|1*)(01)+",
            "",
        ] {
            let re = Regex::parse(pattern, &a).unwrap();
            let rendered = re.to_pattern(&a);
            let reparsed = Regex::parse(&rendered, &a).unwrap_or_else(|e| {
                panic!("{pattern:?} rendered to unparseable {rendered:?}: {e}")
            });
            for n in 0..=5usize {
                for idx in 0..(1u64 << n) {
                    let w = Word::from_index(idx, n, 2);
                    assert_eq!(
                        re.matches(w.symbols()),
                        reparsed.matches(w.symbols()),
                        "pattern {pattern:?} -> {rendered:?}, word {w:?}"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `parse ∘ to_pattern` preserves the language on generated ASTs.
        #[test]
        fn to_pattern_round_trip_random(seed in 0u64..5000) {
            // Deterministic small AST generator driven by the seed.
            fn gen(mut state: u64, depth: u8) -> (Regex, u64) {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let pick = (state >> 33) % if depth == 0 { 3 } else { 8 };
                match pick {
                    0 => (Regex::Symbol(((state >> 7) % 2) as u8), state),
                    1 => (Regex::Class(vec![0, 1]), state),
                    2 => (Regex::Empty, state),
                    3 => {
                        let (a, s2) = gen(state, depth - 1);
                        let (b, s3) = gen(s2, depth - 1);
                        (Regex::Concat(vec![a, b]), s3)
                    }
                    4 => {
                        let (a, s2) = gen(state, depth - 1);
                        let (b, s3) = gen(s2, depth - 1);
                        (Regex::Alt(vec![a, b]), s3)
                    }
                    5 => {
                        let (a, s2) = gen(state, depth - 1);
                        (Regex::Star(Box::new(a)), s2)
                    }
                    6 => {
                        let (a, s2) = gen(state, depth - 1);
                        (Regex::Opt(Box::new(a)), s2)
                    }
                    _ => {
                        let (a, s2) = gen(state, depth - 1);
                        (Regex::Repeat(Box::new(a), 1, 2), s2)
                    }
                }
            }
            let alphabet = Alphabet::binary();
            let (re, _) = gen(seed, 3);
            let rendered = re.to_pattern(&alphabet);
            let reparsed = Regex::parse(&rendered, &alphabet)
                .unwrap_or_else(|e| panic!("unparseable {rendered:?}: {e}"));
            for n in 0..=4usize {
                for idx in 0..(1u64 << n) {
                    let w = Word::from_index(idx, n, 2);
                    prop_assert_eq!(
                        re.matches(w.symbols()),
                        reparsed.matches(w.symbols()),
                        "{:?} -> {:?}, word {:?}", re, rendered, w
                    );
                }
            }
        }

        #[test]
        fn random_patterns_compile_consistently(seed in 0u64..2000) {
            // A tiny pattern generator over a fixed template set keeps the
            // property test fast while covering operator interactions.
            let templates = [
                "0", "1", "0*", "1+", "(01)*", "0|1", "(0|1)*1", "1?0",
                "1{2}", "(0|11)+", "[01]{1,3}", "0*1*", "((0|1)(0|1))*",
            ];
            let a = templates[(seed as usize) % templates.len()];
            let b = templates[(seed as usize / 13) % templates.len()];
            let pattern = format!("{a}{b}");
            let alphabet = Alphabet::binary();
            let re = Regex::parse(&pattern, &alphabet).unwrap();
            let nfa = compile_regex(&pattern, &alphabet).unwrap();
            for n in 0..=5usize {
                for idx in 0..(1u64 << n) {
                    let w = Word::from_index(idx, n, 2);
                    prop_assert_eq!(nfa.accepts(&w), re.matches(w.symbols()));
                }
            }
        }
    }
}
