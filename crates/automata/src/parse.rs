//! Plain-text NFA serialization.
//!
//! A line-based format for shipping automata into the CLI and tests:
//!
//! ```text
//! # words containing "11"
//! alphabet 01
//! states 3
//! initial 0
//! accepting 2
//! trans 0 0 0
//! trans 0 1 0
//! trans 0 1 1
//! trans 1 1 2
//! trans 2 0 2
//! trans 2 1 2
//! ```
//!
//! `alphabet` lists single-character symbol names in id order; `trans`
//! lines are `FROM SYMBOL_CHAR TO`. Blank lines and `#` comments are
//! ignored. [`to_text`] and [`from_text`] round-trip.

use crate::alphabet::Alphabet;
use crate::nfa::{Nfa, NfaBuilder};
use std::fmt;

/// Parse errors with line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNfaError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseNfaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNfaError {}

/// Serializes an automaton to the text format.
pub fn to_text(nfa: &Nfa) -> String {
    let mut out = String::new();
    out.push_str("alphabet ");
    for sym in nfa.alphabet().symbols() {
        out.push(nfa.alphabet().name(sym));
    }
    out.push('\n');
    out.push_str(&format!("states {}\n", nfa.num_states()));
    out.push_str(&format!("initial {}\n", nfa.initial()));
    for q in nfa.accepting().iter() {
        out.push_str(&format!("accepting {q}\n"));
    }
    for (from, sym, to) in nfa.transitions() {
        out.push_str(&format!("trans {from} {} {to}\n", nfa.alphabet().name(sym)));
    }
    out
}

/// Parses the text format.
pub fn from_text(text: &str) -> Result<Nfa, ParseNfaError> {
    let err = |line: usize, message: String| ParseNfaError { line, message };
    let mut alphabet: Option<Alphabet> = None;
    let mut builder: Option<NfaBuilder> = None;
    let mut pending: Vec<(usize, String)> = Vec::new(); // lines before `states`

    let handle_line = |lineno: usize,
                       fields: &[&str],
                       alphabet: &mut Option<Alphabet>,
                       builder: &mut Option<NfaBuilder>|
     -> Result<(), ParseNfaError> {
        match fields[0] {
            "alphabet" => {
                if fields.len() != 2 {
                    return Err(err(lineno, "alphabet needs one token of symbol names".into()));
                }
                *alphabet = Some(Alphabet::with_names(fields[1].chars().collect()));
                Ok(())
            }
            "states" => {
                let a = alphabet
                    .clone()
                    .ok_or_else(|| err(lineno, "alphabet must precede states".into()))?;
                let count: usize = fields
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "states needs a count".into()))?;
                let mut b = NfaBuilder::new(a);
                b.add_states(count);
                *builder = Some(b);
                Ok(())
            }
            "initial" | "accepting" | "trans" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "states must precede this line".into()))?;
                let a = alphabet.as_ref().expect("alphabet set before builder");
                match fields[0] {
                    "initial" => {
                        let q: u32 = fields
                            .get(1)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err(lineno, "initial needs a state id".into()))?;
                        if (q as usize) >= b.num_states() {
                            return Err(err(lineno, format!("initial state {q} out of range")));
                        }
                        b.set_initial(q);
                    }
                    "accepting" => {
                        let q: u32 = fields
                            .get(1)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err(lineno, "accepting needs a state id".into()))?;
                        if (q as usize) >= b.num_states() {
                            return Err(err(lineno, format!("accepting state {q} out of range")));
                        }
                        b.add_accepting(q);
                    }
                    _ => {
                        if fields.len() != 4 {
                            return Err(err(lineno, "trans needs FROM SYM TO".into()));
                        }
                        let from: u32 = fields[1]
                            .parse()
                            .map_err(|_| err(lineno, format!("bad state id {:?}", fields[1])))?;
                        let to: u32 = fields[3]
                            .parse()
                            .map_err(|_| err(lineno, format!("bad state id {:?}", fields[3])))?;
                        let sym_char = fields[2]
                            .chars()
                            .next()
                            .filter(|_| fields[2].chars().count() == 1)
                            .ok_or_else(|| err(lineno, "symbol must be one character".into()))?;
                        let sym = a.symbol(sym_char).ok_or_else(|| {
                            err(lineno, format!("symbol {sym_char:?} not in alphabet"))
                        })?;
                        if (from as usize) >= b.num_states() || (to as usize) >= b.num_states() {
                            return Err(err(lineno, "transition endpoint out of range".into()));
                        }
                        b.add_transition(from, sym, to);
                    }
                }
                Ok(())
            }
            other => Err(err(lineno, format!("unknown directive {other:?}"))),
        }
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        // `states` may only appear once; directives before it other than
        // alphabet are deferred errors for clarity.
        if fields[0] != "alphabet" && fields[0] != "states" && builder.is_none() {
            pending.push((lineno, line.to_string()));
            continue;
        }
        handle_line(lineno, &fields, &mut alphabet, &mut builder)?;
        if builder.is_some() && !pending.is_empty() {
            let (lineno, _) = pending[0];
            return Err(err(lineno, "directive appears before `states`".into()));
        }
    }
    let builder = builder.ok_or_else(|| err(0, "missing `states` directive".into()))?;
    builder.build().map_err(|e| err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Word;
    use proptest::prelude::*;

    const SAMPLE: &str = "\
# words containing 11
alphabet 01
states 3
initial 0
accepting 2
trans 0 0 0
trans 0 1 0
trans 0 1 1
trans 1 1 2
trans 2 0 2
trans 2 1 2
";

    #[test]
    fn parse_and_accept() {
        let nfa = from_text(SAMPLE).unwrap();
        assert_eq!(nfa.num_states(), 3);
        assert!(nfa.accepts(&Word::parse("011", nfa.alphabet()).unwrap()));
        assert!(!nfa.accepts(&Word::parse("010", nfa.alphabet()).unwrap()));
    }

    #[test]
    fn round_trip() {
        let nfa = from_text(SAMPLE).unwrap();
        let text = to_text(&nfa);
        let again = from_text(&text).unwrap();
        assert_eq!(nfa, again);
    }

    #[test]
    fn error_reporting() {
        let bad = "alphabet 01\nstates 2\ninitial 5\n";
        let e = from_text(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("out of range"));

        let bad = "alphabet 01\nstates 1\ninitial 0\naccepting 0\ntrans 0 x 0\n";
        let e = from_text(bad).unwrap_err();
        assert!(e.message.contains("not in alphabet"));

        assert!(from_text("").is_err());
        assert!(from_text("states 1\n").is_err(), "alphabet must come first");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hi\nalphabet ab\n\nstates 1\ninitial 0 # inline\naccepting 0\n";
        let nfa = from_text(text).unwrap();
        assert_eq!(nfa.alphabet().size(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// to_text ∘ from_text is the identity on random automata.
        #[test]
        fn random_nfa_round_trip(
            m in 1usize..12,
            k in 1usize..4,
            edges in proptest::collection::vec((0u32..12, 0u8..4, 0u32..12), 0..40),
            initial in 0u32..12,
            accepting in proptest::collection::vec(0u32..12, 1..4),
        ) {
            let mut b = crate::nfa::NfaBuilder::new(Alphabet::of_size(k));
            b.add_states(m);
            b.set_initial(initial % m as u32);
            for &q in &accepting {
                b.add_accepting(q % m as u32);
            }
            for &(f, s, t) in &edges {
                if (s as usize) < k {
                    b.add_transition(f % m as u32, s, t % m as u32);
                }
            }
            let nfa = b.build().unwrap();
            let text = to_text(&nfa);
            let back = from_text(&text).unwrap();
            prop_assert_eq!(nfa, back);
        }
    }
}
