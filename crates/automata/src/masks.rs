//! Precomputed transition masks for fast set-valued stepping.
//!
//! The paper's complexity analysis (§4.3) amortizes membership-oracle
//! calls by precomputing, for every sampled string `w`, the set of states
//! reachable via `w`; subsequent oracle queries are then `O(1)`. This
//! module supplies the machinery: one [`StateSet`] per `(symbol, state)`
//! holding its successors (resp. predecessors), so a set-valued step is a
//! word-wide OR per member state instead of a pointer chase per
//! transition.

use crate::alphabet::Symbol;
use crate::nfa::Nfa;
use crate::stateset::StateSet;
use crate::word::Word;

/// Bit-parallel stepping tables for one NFA.
#[derive(Clone, Debug)]
pub struct StepMasks {
    universe: usize,
    /// `succ[sym][q]` = successor set of `q` on `sym`, as a bitset.
    succ: Vec<Vec<StateSet>>,
    /// `pred[sym][q]` = predecessor set of `q` on `sym`, as a bitset.
    pred: Vec<Vec<StateSet>>,
    initial: usize,
    accepting: StateSet,
}

impl StepMasks {
    /// Builds the tables; `O(k·m²/64)` space.
    pub fn new(nfa: &Nfa) -> Self {
        let m = nfa.num_states();
        let k = nfa.alphabet().size();
        let mut succ = Vec::with_capacity(k);
        let mut pred = Vec::with_capacity(k);
        for sym in 0..k as u8 {
            let mut s_row = Vec::with_capacity(m);
            let mut p_row = Vec::with_capacity(m);
            for q in 0..m as u32 {
                s_row.push(StateSet::from_iter(
                    m,
                    nfa.successors(q, sym).iter().map(|&t| t as usize),
                ));
                p_row.push(StateSet::from_iter(
                    m,
                    nfa.predecessors(q, sym).iter().map(|&t| t as usize),
                ));
            }
            succ.push(s_row);
            pred.push(p_row);
        }
        StepMasks {
            universe: m,
            succ,
            pred,
            initial: nfa.initial() as usize,
            accepting: nfa.accepting().clone(),
        }
    }

    /// Size of the state universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// One forward step from `from` on `sym`.
    #[inline]
    pub fn step(&self, from: &StateSet, sym: Symbol) -> StateSet {
        let mut out = StateSet::empty(self.universe);
        let row = &self.succ[sym as usize];
        for q in from.iter() {
            out.union_with(&row[q]);
        }
        out
    }

    /// One backward step from `of` on `sym`
    /// (`P_b = ⋃_{p∈P} Pred(p, b)`, Algorithm 2 line 9).
    #[inline]
    pub fn step_back(&self, of: &StateSet, sym: Symbol) -> StateSet {
        let mut out = StateSet::empty(self.universe);
        let row = &self.pred[sym as usize];
        for q in of.iter() {
            out.union_with(&row[q]);
        }
        out
    }

    /// States reachable from the initial state via `word` — the value the
    /// membership oracle stores per sampled string.
    pub fn reach(&self, word: &Word) -> StateSet {
        let mut cur = StateSet::singleton(self.universe, self.initial);
        for &sym in word.symbols() {
            cur = self.step(&cur, sym);
        }
        cur
    }

    /// States reachable via `word` starting from an arbitrary set.
    pub fn reach_from(&self, start: &StateSet, word: &Word) -> StateSet {
        let mut cur = start.clone();
        for &sym in word.symbols() {
            cur = self.step(&cur, sym);
        }
        cur
    }

    /// True iff `word ∈ L(A)`.
    pub fn accepts(&self, word: &Word) -> bool {
        self.reach(word).intersects(&self.accepting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::nfa::NfaBuilder;
    use proptest::prelude::*;

    fn contains_11() -> Nfa {
        let mut b = NfaBuilder::new(Alphabet::binary());
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q2);
        b.add_transition(q0, 0, q0);
        b.add_transition(q0, 1, q0);
        b.add_transition(q0, 1, q1);
        b.add_transition(q1, 1, q2);
        b.add_transition(q2, 0, q2);
        b.add_transition(q2, 1, q2);
        b.build().unwrap()
    }

    #[test]
    fn matches_nfa_step() {
        let nfa = contains_11();
        let masks = StepMasks::new(&nfa);
        for bits in 0u32..8 {
            let set = StateSet::from_iter(3, (0..3).filter(|&q| bits & (1 << q) != 0));
            for sym in 0..2u8 {
                assert_eq!(masks.step(&set, sym), nfa.step(&set, sym));
                assert_eq!(masks.step_back(&set, sym), nfa.step_back(&set, sym));
            }
        }
    }

    #[test]
    fn accepts_matches_nfa() {
        let nfa = contains_11();
        let masks = StepMasks::new(&nfa);
        for n in 0..6usize {
            for idx in 0..(1u64 << n) {
                let w = Word::from_index(idx, n, 2);
                assert_eq!(masks.accepts(&w), nfa.accepts(&w), "word {w:?}");
            }
        }
    }

    #[test]
    fn reach_from_composes() {
        let nfa = contains_11();
        let masks = StepMasks::new(&nfa);
        let w1 = Word::from_symbols(vec![1]);
        let w2 = Word::from_symbols(vec![1, 0]);
        let mid = masks.reach(&w1);
        let full = masks.reach_from(&mid, &w2);
        assert_eq!(full, masks.reach(&w1.concat(&w2)));
    }

    proptest! {
        #[test]
        fn random_nfa_step_equivalence(
            edges in proptest::collection::vec((0u32..6, 0u8..2, 0u32..6), 1..30),
            set_bits in 0u64..64,
        ) {
            let mut b = NfaBuilder::new(Alphabet::binary());
            b.add_states(6);
            b.set_initial(0);
            b.add_accepting(5);
            for &(f, s, t) in &edges {
                b.add_transition(f, s, t);
            }
            let nfa = b.build().unwrap();
            let masks = StepMasks::new(&nfa);
            let set = StateSet::from_iter(6, (0..6).filter(|&q| set_bits & (1 << q) != 0));
            for sym in 0..2u8 {
                prop_assert_eq!(masks.step(&set, sym), nfa.step(&set, sym));
                prop_assert_eq!(masks.step_back(&set, sym), nfa.step_back(&set, sym));
            }
        }
    }
}
