//! Precomputed transition masks for fast set-valued stepping.
//!
//! The paper's complexity analysis (§4.3) amortizes membership-oracle
//! calls by precomputing, for every sampled string `w`, the set of states
//! reachable via `w`; subsequent oracle queries are then `O(1)`. This
//! module supplies the machinery: one bitset row per `(symbol, state)`
//! holding its successors (resp. predecessors), so a set-valued step is a
//! word-wide OR per member state instead of a pointer chase per
//! transition.
//!
//! The rows live in two flat **symbol-major word arenas** (`succ_words`,
//! `pred_words`), not a `Vec<Vec<StateSet>>`: the row for `(sym, q)`
//! starts at `(sym·m + q)·stride` where `stride = ⌈m/64⌉`. One
//! contiguous allocation per direction keeps the per-member ORs on
//! cache-adjacent memory and lets the engine borrow raw rows
//! (`pred_row`) without constructing sets. The in-place kernels
//! [`StepMasks::step_into`] / [`StepMasks::step_back_into`] write into a
//! caller-owned output set, so the sampler's per-symbol inner loop
//! allocates nothing; [`StepMasks::step`] / [`StepMasks::step_back`]
//! remain as allocating conveniences.

use crate::alphabet::Symbol;
use crate::nfa::Nfa;
use crate::stateset::StateSet;
use crate::word::Word;

/// Bit-parallel stepping tables for one NFA, backed by flat word arenas.
#[derive(Clone, Debug)]
pub struct StepMasks {
    universe: usize,
    /// Words per row: `⌈universe/64⌉`.
    stride: usize,
    /// Alphabet size.
    k: usize,
    /// Successor rows, symbol-major: row `(sym, q)` at `(sym·m + q)·stride`.
    succ_words: Vec<u64>,
    /// Predecessor rows, same layout.
    pred_words: Vec<u64>,
    initial: usize,
    accepting: StateSet,
}

impl StepMasks {
    /// Builds the tables; `O(k·m²/64)` space.
    pub fn new(nfa: &Nfa) -> Self {
        let m = nfa.num_states();
        let k = nfa.alphabet().size();
        let stride = m.div_ceil(64);
        let mut succ_words = vec![0u64; k * m * stride];
        let mut pred_words = vec![0u64; k * m * stride];
        for sym in 0..k as u8 {
            for q in 0..m as u32 {
                let at = (sym as usize * m + q as usize) * stride;
                for &t in nfa.successors(q, sym) {
                    succ_words[at + t as usize / 64] |= 1u64 << (t % 64);
                }
                for &t in nfa.predecessors(q, sym) {
                    pred_words[at + t as usize / 64] |= 1u64 << (t % 64);
                }
            }
        }
        StepMasks {
            universe: m,
            stride,
            k,
            succ_words,
            pred_words,
            initial: nfa.initial() as usize,
            accepting: nfa.accepting().clone(),
        }
    }

    /// Size of the state universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Alphabet size the tables were built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The NFA's initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The arena row of `q`'s predecessors on `sym`, as raw words.
    #[inline]
    pub fn pred_row(&self, sym: Symbol, q: usize) -> &[u64] {
        let at = (sym as usize * self.universe + q) * self.stride;
        &self.pred_words[at..at + self.stride]
    }

    /// One forward step from `from` on `sym`, written into `out`
    /// (cleared first). `out` must range over the same universe.
    #[inline]
    pub fn step_into(&self, from: &StateSet, sym: Symbol, out: &mut StateSet) {
        out.clear();
        let base = sym as usize * self.universe * self.stride;
        for q in from.iter() {
            let at = base + q * self.stride;
            out.union_with_words(&self.succ_words[at..at + self.stride]);
        }
    }

    /// One backward step from `of` on `sym`, written into `out`
    /// (cleared first): `P_b = ⋃_{p∈P} Pred(p, b)`, Algorithm 2 line 9.
    #[inline]
    pub fn step_back_into(&self, of: &StateSet, sym: Symbol, out: &mut StateSet) {
        out.clear();
        let base = sym as usize * self.universe * self.stride;
        for q in of.iter() {
            let at = base + q * self.stride;
            out.union_with_words(&self.pred_words[at..at + self.stride]);
        }
    }

    /// One forward step from `from` on `sym` (allocating convenience).
    #[inline]
    pub fn step(&self, from: &StateSet, sym: Symbol) -> StateSet {
        let mut out = StateSet::empty(self.universe);
        self.step_into(from, sym, &mut out);
        out
    }

    /// One backward step from `of` on `sym` (allocating convenience).
    #[inline]
    pub fn step_back(&self, of: &StateSet, sym: Symbol) -> StateSet {
        let mut out = StateSet::empty(self.universe);
        self.step_back_into(of, sym, &mut out);
        out
    }

    /// States reachable from the initial state via `word` — the value the
    /// membership oracle stores per sampled string.
    pub fn reach(&self, word: &Word) -> StateSet {
        self.reach_from(&StateSet::singleton(self.universe, self.initial), word)
    }

    /// States reachable via `word` starting from an arbitrary set.
    pub fn reach_from(&self, start: &StateSet, word: &Word) -> StateSet {
        // Double-buffered: two sets for the whole walk, not one per step.
        let mut cur = start.clone();
        let mut next = StateSet::empty(self.universe);
        for &sym in word.symbols() {
            self.step_into(&cur, sym, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// True iff `word ∈ L(A)`.
    pub fn accepts(&self, word: &Word) -> bool {
        self.reach(word).intersects(&self.accepting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::nfa::NfaBuilder;
    use proptest::prelude::*;

    fn contains_11() -> Nfa {
        let mut b = NfaBuilder::new(Alphabet::binary());
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q2);
        b.add_transition(q0, 0, q0);
        b.add_transition(q0, 1, q0);
        b.add_transition(q0, 1, q1);
        b.add_transition(q1, 1, q2);
        b.add_transition(q2, 0, q2);
        b.add_transition(q2, 1, q2);
        b.build().unwrap()
    }

    #[test]
    fn matches_nfa_step() {
        let nfa = contains_11();
        let masks = StepMasks::new(&nfa);
        for bits in 0u32..8 {
            let set = StateSet::from_iter(3, (0..3).filter(|&q| bits & (1 << q) != 0));
            for sym in 0..2u8 {
                assert_eq!(masks.step(&set, sym), nfa.step(&set, sym));
                assert_eq!(masks.step_back(&set, sym), nfa.step_back(&set, sym));
            }
        }
    }

    #[test]
    fn into_kernels_match_and_clear_stale_bits() {
        let nfa = contains_11();
        let masks = StepMasks::new(&nfa);
        let set = StateSet::from_iter(3, [0, 1]);
        // Pre-fill the output with garbage: step_into must clear it.
        let mut out = StateSet::full(3);
        masks.step_into(&set, 1, &mut out);
        assert_eq!(out, nfa.step(&set, 1));
        let mut back = StateSet::full(3);
        masks.step_back_into(&set, 1, &mut back);
        assert_eq!(back, nfa.step_back(&set, 1));
    }

    #[test]
    fn pred_row_matches_step_back_of_singleton() {
        let nfa = contains_11();
        let masks = StepMasks::new(&nfa);
        for sym in 0..2u8 {
            for q in 0..3usize {
                let single = StateSet::singleton(3, q);
                assert_eq!(
                    masks.step_back(&single, sym).words(),
                    masks.pred_row(sym, q),
                    "sym {sym} q {q}"
                );
            }
        }
    }

    #[test]
    fn accepts_matches_nfa() {
        let nfa = contains_11();
        let masks = StepMasks::new(&nfa);
        for n in 0..6usize {
            for idx in 0..(1u64 << n) {
                let w = Word::from_index(idx, n, 2);
                assert_eq!(masks.accepts(&w), nfa.accepts(&w), "word {w:?}");
            }
        }
    }

    #[test]
    fn reach_from_composes() {
        let nfa = contains_11();
        let masks = StepMasks::new(&nfa);
        let w1 = Word::from_symbols(vec![1]);
        let w2 = Word::from_symbols(vec![1, 0]);
        let mid = masks.reach(&w1);
        let full = masks.reach_from(&mid, &w2);
        assert_eq!(full, masks.reach(&w1.concat(&w2)));
    }

    proptest! {
        #[test]
        fn random_nfa_step_equivalence(
            edges in proptest::collection::vec((0u32..6, 0u8..2, 0u32..6), 1..30),
            set_bits in 0u64..64,
        ) {
            let mut b = NfaBuilder::new(Alphabet::binary());
            b.add_states(6);
            b.set_initial(0);
            b.add_accepting(5);
            for &(f, s, t) in &edges {
                b.add_transition(f, s, t);
            }
            let nfa = b.build().unwrap();
            let masks = StepMasks::new(&nfa);
            let set = StateSet::from_iter(6, (0..6).filter(|&q| set_bits & (1 << q) != 0));
            for sym in 0..2u8 {
                prop_assert_eq!(masks.step(&set, sym), nfa.step(&set, sym));
                prop_assert_eq!(masks.step_back(&set, sym), nfa.step_back(&set, sym));
            }
        }
    }
}
