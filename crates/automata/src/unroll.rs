//! Level structure of the unrolled automaton `A_unroll`.
//!
//! The template algorithm (Fig. 1, line 1) unrolls `A` into an acyclic
//! graph with `n+1` levels, the `ℓ`-th holding a copy `qℓ` of every state.
//! Materializing `m·(n+1)` states is unnecessary: every query the FPRAS
//! makes about `A_unroll` is answered by two families of per-level state
//! sets,
//!
//! * `reach(ℓ)` — states `q` with `L(qℓ) ≠ ∅` (some length-`ℓ` word
//!   reaches `q` from the initial state), and
//! * `alive(ℓ)` — states that can still reach the accepting state in the
//!   remaining `n-ℓ` steps,
//!
//! plus deterministic *witness words* for the padding step of Algorithm 3
//! (lines 27–30: "let `w_qℓ` be some word in `L(qℓ)`").

use crate::nfa::{Nfa, StateId};
use crate::stateset::StateSet;
use crate::word::Word;

/// Per-level reachability view of `A_unroll` for a fixed horizon `n`.
#[derive(Clone, Debug)]
pub struct Unrolling {
    n: usize,
    /// `reach[ℓ]` = states with a length-`ℓ` path from the initial state.
    reach: Vec<StateSet>,
    /// `dist[d]` = states with a length-`d` path to an accepting state,
    /// so `alive(ℓ) = dist[n-ℓ]`. Indexing by *distance* instead of by
    /// level makes both families prefix-stable under horizon growth:
    /// [`Unrolling::extend_to`] only appends, it never recomputes.
    dist: Vec<StateSet>,
}

impl Unrolling {
    /// Computes both families in `O(n·|Δ|)`.
    pub fn new(nfa: &Nfa, n: usize) -> Self {
        let mut u = Unrolling {
            n: 0,
            reach: vec![StateSet::singleton(nfa.num_states(), nfa.initial() as usize)],
            dist: vec![nfa.accepting().clone()],
        };
        u.extend_to(nfa, n);
        u
    }

    /// The horizon `n`.
    pub fn horizon(&self) -> usize {
        self.n
    }

    /// Extends the view to a larger horizon `n` in place (no-op when the
    /// horizon is already `≥ n`), in `O((n − old) · |Δ|)`.
    ///
    /// Both families are stored horizon-independently — `reach` is the
    /// forward closure from the initial state, `dist` the backward
    /// closure from the accepting set, indexed by distance — so
    /// extension appends the missing entries and keeps every existing
    /// set verbatim. Only the *interpretation* of `alive(ℓ)` (distance
    /// `n − ℓ`) shifts with the horizon, which is why incremental
    /// engine runs (`QuerySession`, DESIGN.md D11) must not consult it.
    pub fn extend_to(&mut self, nfa: &Nfa, n: usize) {
        if n <= self.n {
            return;
        }
        let m = nfa.num_states();
        let k = nfa.alphabet().size() as u8;
        let closure = |sets: &mut Vec<StateSet>, step: &dyn Fn(&StateSet, u8) -> StateSet| {
            sets.reserve(n - sets.len() + 1);
            while sets.len() <= n {
                let prev = sets.last().expect("families always hold index 0");
                let mut cur = StateSet::empty(m);
                for sym in 0..k {
                    cur.union_with(&step(prev, sym));
                }
                sets.push(cur);
            }
        };
        closure(&mut self.reach, &|set, sym| nfa.step(set, sym));
        closure(&mut self.dist, &|set, sym| nfa.step_back(set, sym));
        self.n = n;
    }

    /// States `q` with `L(qℓ) ≠ ∅`.
    pub fn reachable(&self, level: usize) -> &StateSet {
        &self.reach[level]
    }

    /// States that can reach the accepting set in exactly `n - ℓ` steps.
    pub fn alive(&self, level: usize) -> &StateSet {
        &self.dist[self.n - level]
    }

    /// True iff `qℓ` is both reachable and alive — i.e. the state copy
    /// participates in some accepting length-`n` run.
    pub fn useful(&self, q: StateId, level: usize) -> bool {
        self.reach[level].contains(q as usize) && self.alive(level).contains(q as usize)
    }

    /// True iff `L(A_n)` is non-empty.
    pub fn language_nonempty(&self) -> bool {
        let mut last = self.reach[self.n].clone();
        last.intersect_with(self.alive(self.n));
        !last.is_empty()
    }

    /// A deterministic word of length `level` in `L(qℓ)`, or `None` if
    /// `L(qℓ) = ∅`.
    ///
    /// Used for the padding step (Algorithm 3 lines 27–30). The word is
    /// built backwards, greedily taking the smallest symbol (and then the
    /// smallest predecessor) available at each level, so repeated calls
    /// return the same word.
    pub fn witness(&self, nfa: &Nfa, q: StateId, level: usize) -> Option<Word> {
        if !self.reach[level].contains(q as usize) {
            return None;
        }
        let k = nfa.alphabet().size() as u8;
        let mut rev_syms = Vec::with_capacity(level);
        let mut cur = q;
        for ell in (1..=level).rev() {
            let prev_reach = &self.reach[ell - 1];
            let mut found = false;
            'sym: for sym in 0..k {
                for &p in nfa.predecessors(cur, sym) {
                    if prev_reach.contains(p as usize) {
                        rev_syms.push(sym);
                        cur = p;
                        found = true;
                        break 'sym;
                    }
                }
            }
            debug_assert!(found, "reachable state must have a reachable predecessor");
            if !found {
                return None;
            }
        }
        Some(Word::from_reversed(rev_syms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::nfa::NfaBuilder;

    /// Accepts words containing "11".
    fn contains_11() -> Nfa {
        let mut b = NfaBuilder::new(Alphabet::binary());
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q2);
        b.add_transition(q0, 0, q0);
        b.add_transition(q0, 1, q0);
        b.add_transition(q0, 1, q1);
        b.add_transition(q1, 1, q2);
        b.add_transition(q2, 0, q2);
        b.add_transition(q2, 1, q2);
        b.build().unwrap()
    }

    #[test]
    fn reach_levels() {
        let nfa = contains_11();
        let u = Unrolling::new(&nfa, 4);
        assert_eq!(u.reachable(0).iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(u.reachable(1).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(u.reachable(2).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(u.reachable(4).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn alive_levels() {
        let nfa = contains_11();
        let u = Unrolling::new(&nfa, 3);
        // At level 3 only the accepting state is alive.
        assert_eq!(u.alive(3).iter().collect::<Vec<_>>(), vec![2]);
        // At level 2: states that reach q2 in one step: q1 (via 1), q2 (loops).
        assert_eq!(u.alive(2).iter().collect::<Vec<_>>(), vec![1, 2]);
        // At level 0 everything can still make it.
        assert_eq!(u.alive(0).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn useful_combines_both() {
        let nfa = contains_11();
        let u = Unrolling::new(&nfa, 2);
        // n=2: only "11" is accepted. q1 at level 1 is reachable and alive.
        assert!(u.useful(1, 1));
        // q0 at level 2 is reachable but dead (cannot accept in 0 steps).
        assert!(!u.useful(0, 2));
        assert!(u.language_nonempty());
    }

    #[test]
    fn empty_slice_detected() {
        let nfa = contains_11();
        // n=1: no length-1 word contains "11".
        let u = Unrolling::new(&nfa, 1);
        assert!(!u.language_nonempty());
    }

    #[test]
    fn witness_is_valid_and_deterministic() {
        let nfa = contains_11();
        let u = Unrolling::new(&nfa, 5);
        for level in 0..=5usize {
            for q in 0..3u32 {
                match u.witness(&nfa, q, level) {
                    Some(w) => {
                        assert_eq!(w.len(), level);
                        assert!(
                            nfa.reach(&w).contains(q as usize),
                            "witness {w:?} must reach q{q}"
                        );
                        // Determinism.
                        assert_eq!(u.witness(&nfa, q, level), Some(w));
                    }
                    None => {
                        assert!(!u.reachable(level).contains(q as usize));
                    }
                }
            }
        }
    }

    #[test]
    fn witness_smallest_symbol_first() {
        let nfa = contains_11();
        let u = Unrolling::new(&nfa, 3);
        // Witness for q0 at level 3 should be all zeros (greedy smallest).
        let w = u.witness(&nfa, 0, 3).unwrap();
        assert_eq!(w.symbols(), &[0, 0, 0]);
        // Witness for q2 at level 2 must be "11" (only option).
        let w = u.witness(&nfa, 2, 2).unwrap();
        assert_eq!(w.symbols(), &[1, 1]);
    }

    #[test]
    fn extend_to_matches_fresh_unrolling() {
        let nfa = contains_11();
        // Grow 0 → 3 → 7 and compare against fresh views at each stop:
        // reach must be extended in place (prefix-stable), alive must be
        // recomputed for the new horizon.
        let mut grown = Unrolling::new(&nfa, 0);
        for horizon in [3usize, 7] {
            grown.extend_to(&nfa, horizon);
            let fresh = Unrolling::new(&nfa, horizon);
            assert_eq!(grown.horizon(), horizon);
            for ell in 0..=horizon {
                assert_eq!(
                    grown.reachable(ell).iter().collect::<Vec<_>>(),
                    fresh.reachable(ell).iter().collect::<Vec<_>>(),
                    "reach at {ell}/{horizon}"
                );
                assert_eq!(
                    grown.alive(ell).iter().collect::<Vec<_>>(),
                    fresh.alive(ell).iter().collect::<Vec<_>>(),
                    "alive at {ell}/{horizon}"
                );
                for q in 0..3u32 {
                    assert_eq!(
                        grown.witness(&nfa, q, ell),
                        fresh.witness(&nfa, q, ell),
                        "witness at ({q}, {ell})"
                    );
                }
            }
            assert_eq!(grown.language_nonempty(), fresh.language_nonempty());
        }
        // Shrinking is a no-op.
        grown.extend_to(&nfa, 2);
        assert_eq!(grown.horizon(), 7);
    }

    #[test]
    fn witness_level_zero() {
        let nfa = contains_11();
        let u = Unrolling::new(&nfa, 2);
        assert_eq!(u.witness(&nfa, 0, 0), Some(Word::empty()));
        assert_eq!(u.witness(&nfa, 1, 0), None);
    }
}
