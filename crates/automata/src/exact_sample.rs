//! Exact uniform sampling from `L(A_n)`.
//!
//! The uniformity experiments (E7) compare the FPRAS's almost-uniform
//! generator against a *perfectly* uniform reference. This sampler walks
//! the determinization DP of [`crate::exact`] backwards: pick an accepting
//! subset at level `n` with probability proportional to its word count,
//! then repeatedly pick an incoming `(subset, symbol)` edge proportional
//! to the predecessor's count. Every length-`n` accepted word is produced
//! with probability exactly `1/|L(A_n)|` up to the `f64` rounding of the
//! categorical draws (relative weight error ≤ 2⁻⁵², orders of magnitude
//! below the statistical resolution of any experiment here).

use crate::exact::{Determinization, ExactError};
use crate::nfa::Nfa;
use crate::word::Word;
use fpras_numeric::{sample_extfloat_weights, ExtFloat};
use rand::Rng;

/// A uniform sampler over `L(A_n)` backed by the exact determinization DP.
pub struct ExactSampler {
    dp: Determinization,
    n: usize,
    /// Indices of accepting subsets at level `n` and their weights.
    final_choices: Vec<usize>,
    final_weights: Vec<ExtFloat>,
}

impl ExactSampler {
    /// Builds the sampler; inherits the exact counter's exponential
    /// worst-case cost and its subset cap.
    pub fn new(nfa: &Nfa, n: usize) -> Result<Self, ExactError> {
        let dp = Determinization::build(nfa, n)?;
        let mut final_choices = Vec::new();
        let mut final_weights = Vec::new();
        for (i, subset) in dp.level_subsets(n).iter().enumerate() {
            if subset.intersects(dp.accepting()) {
                final_choices.push(i);
                final_weights.push(ExtFloat::from_biguint(&dp.level_counts(n)[i]));
            }
        }
        Ok(ExactSampler { dp, n, final_choices, final_weights })
    }

    /// True iff `L(A_n)` is empty (no word can be sampled).
    pub fn is_empty(&self) -> bool {
        self.final_choices.is_empty()
    }

    /// Draws one uniform word, or `None` when the language is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Word> {
        let pick = sample_extfloat_weights(rng, &self.final_weights)?;
        let mut idx = self.final_choices[pick];
        let mut rev_syms = Vec::with_capacity(self.n);
        for level in (1..=self.n).rev() {
            let preds = &self.dp.level_preds(level)[idx];
            debug_assert!(!preds.is_empty(), "non-initial subset must have predecessors");
            let weights: Vec<ExtFloat> = preds
                .iter()
                .map(|&(pi, _)| ExtFloat::from_biguint(&self.dp.level_counts(level - 1)[pi]))
                .collect();
            let choice = sample_extfloat_weights(rng, &weights)?;
            let (pi, sym) = preds[choice];
            rev_syms.push(sym);
            idx = pi;
        }
        Some(Word::from_reversed(rev_syms))
    }

    /// Draws `count` words (fewer if the language is empty).
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Word> {
        (0..count).filter_map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::exact::count_exact;
    use crate::nfa::NfaBuilder;
    use fpras_numeric::stats::tv_to_uniform;
    use rand::{rngs::SmallRng, SeedableRng};
    use std::collections::HashMap;

    fn contains_11() -> Nfa {
        let mut b = NfaBuilder::new(Alphabet::binary());
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q2);
        b.add_transition(q0, 0, q0);
        b.add_transition(q0, 1, q0);
        b.add_transition(q0, 1, q1);
        b.add_transition(q1, 1, q2);
        b.add_transition(q2, 0, q2);
        b.add_transition(q2, 1, q2);
        b.build().unwrap()
    }

    #[test]
    fn samples_are_in_language() {
        let nfa = contains_11();
        let sampler = ExactSampler::new(&nfa, 6).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        for w in sampler.sample_many(&mut rng, 500) {
            assert_eq!(w.len(), 6);
            assert!(nfa.accepts(&w), "sampled word {w:?} not accepted");
        }
    }

    #[test]
    fn empty_language_yields_none() {
        let nfa = contains_11();
        let sampler = ExactSampler::new(&nfa, 1).unwrap();
        assert!(sampler.is_empty());
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sampler.sample(&mut rng), None);
    }

    #[test]
    fn distribution_close_to_uniform() {
        let nfa = contains_11();
        let n = 5;
        let support = count_exact(&nfa, n).unwrap().to_u64().unwrap() as usize;
        let sampler = ExactSampler::new(&nfa, n).unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let draws = 40_000;
        for w in sampler.sample_many(&mut rng, draws) {
            *counts.entry(w.to_index(2)).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), support, "all words should appear");
        let tv = tv_to_uniform(&counts, support);
        assert!(tv < 0.03, "TV to uniform too large: {tv}");
    }

    #[test]
    fn singleton_language() {
        // Exactly one word of length 2 ("11") is accepted.
        let nfa = contains_11();
        let sampler = ExactSampler::new(&nfa, 2).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let w = sampler.sample(&mut rng).unwrap();
            assert_eq!(w.symbols(), &[1, 1]);
        }
    }
}
