//! Variable-set automata (VSet-automata) — the machine model of document
//! spanners.
//!
//! A VSet-automaton is an NFA whose transitions either *read* one
//! document symbol or perform a *marker operation*: open a variable
//! (`⊢x`, the span's begin cut) or close it (`x⊣`, the end cut). An
//! accepting run over a document induces a [`crate::SpanTuple`]; the
//! spanner's answer set is the set of distinct tuples over all accepting
//! runs — *distinct* being the operative word: many runs can induce the
//! same tuple, which is why counting answers is #NFA-hard and why naive
//! run counting overcounts.

use fpras_automata::alphabet::{Alphabet, Symbol};
use fpras_automata::StateId;
use std::fmt;

/// A variable identifier, dense in `0..num_vars`. At most
/// [`MAX_VARS`] variables are supported (the compiled marker alphabet
/// has `4^num_vars` symbols).
pub type VarId = u8;

/// Maximum supported variable count (marker alphabet size `4³ = 64`).
pub const MAX_VARS: usize = 3;

/// One VSet transition action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VAction {
    /// Consume one document symbol.
    Read(Symbol),
    /// Open variable `x` (record the span begin at the current position).
    Open(VarId),
    /// Close variable `x` (record the span end at the current position).
    Close(VarId),
}

/// A variable-set automaton.
///
/// Construct through [`VSetBuilder`]. The structure is deliberately
/// lightweight — adjacency lists per action kind — because the heavy
/// lifting happens after compilation to a plain [`fpras_automata::Nfa`].
#[derive(Clone)]
pub struct VSetAutomaton {
    pub(crate) alphabet: Alphabet,
    pub(crate) num_vars: usize,
    pub(crate) num_states: usize,
    pub(crate) initial: StateId,
    pub(crate) accepting: Vec<bool>,
    /// `read[sym][q]` = states reachable from `q` reading `sym`.
    pub(crate) read: Vec<Vec<Vec<StateId>>>,
    /// `open[x][q]` = states reachable from `q` via `⊢x`.
    pub(crate) open: Vec<Vec<Vec<StateId>>>,
    /// `close[x][q]` = states reachable from `q` via `x⊣`.
    pub(crate) close: Vec<Vec<Vec<StateId>>>,
}

impl VSetAutomaton {
    /// The document alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// True iff `q` is accepting.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting[q as usize]
    }
}

impl fmt::Debug for VSetAutomaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VSetAutomaton(states={}, vars={}, alphabet={:?})",
            self.num_states, self.num_vars, self.alphabet
        )
    }
}

/// Incremental constructor for [`VSetAutomaton`].
///
/// ```
/// use fpras_spanner::VSetBuilder;
/// use fpras_automata::Alphabet;
///
/// // Extract one span x of 1s: .* ⊢x 1+ x⊣ .*
/// let mut b = VSetBuilder::new(Alphabet::binary(), 1);
/// let s0 = b.add_state();
/// let s1 = b.add_state();
/// let s2 = b.add_state();
/// let s3 = b.add_state();
/// b.set_initial(s0);
/// b.add_accepting(s3);
/// for sym in [0, 1] {
///     b.read(s0, sym, s0);
///     b.read(s3, sym, s3);
/// }
/// b.open(s0, 0, s1);
/// b.read(s1, 1, s2);
/// b.read(s2, 1, s2);
/// b.close(s2, 0, s3);
/// let vset = b.build().unwrap();
/// assert_eq!(vset.num_vars(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct VSetBuilder {
    alphabet: Alphabet,
    num_vars: usize,
    num_states: usize,
    initial: Option<StateId>,
    accepting: Vec<StateId>,
    transitions: Vec<(StateId, VAction, StateId)>,
}

/// Errors from [`VSetBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VSetBuildError {
    /// The automaton has no states.
    NoStates,
    /// No accepting state was declared.
    NoAcceptingStates,
}

impl fmt::Display for VSetBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VSetBuildError::NoStates => write!(f, "VSet automaton must have at least one state"),
            VSetBuildError::NoAcceptingStates => {
                write!(f, "VSet automaton must have an accepting state")
            }
        }
    }
}

impl std::error::Error for VSetBuildError {}

impl VSetBuilder {
    /// Starts an empty automaton over `alphabet` with `num_vars`
    /// variables.
    ///
    /// # Panics
    /// Panics if `num_vars` exceeds [`MAX_VARS`].
    pub fn new(alphabet: Alphabet, num_vars: usize) -> Self {
        assert!(num_vars <= MAX_VARS, "at most {MAX_VARS} variables supported, got {num_vars}");
        VSetBuilder {
            alphabet,
            num_vars,
            num_states: 0,
            initial: None,
            accepting: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Adds one state, returning its id.
    pub fn add_state(&mut self) -> StateId {
        let id = self.num_states as StateId;
        self.num_states += 1;
        id
    }

    /// Declares the initial state.
    pub fn set_initial(&mut self, q: StateId) {
        assert!((q as usize) < self.num_states, "initial state {q} does not exist");
        self.initial = Some(q);
    }

    /// Marks a state accepting.
    pub fn add_accepting(&mut self, q: StateId) {
        assert!((q as usize) < self.num_states, "accepting state {q} does not exist");
        self.accepting.push(q);
    }

    /// Adds a read transition `from --sym--> to`.
    pub fn read(&mut self, from: StateId, sym: Symbol, to: StateId) {
        assert!((sym as usize) < self.alphabet.size(), "symbol {sym} outside alphabet");
        self.push(from, VAction::Read(sym), to);
    }

    /// Adds an open-marker transition `from --⊢x--> to`.
    pub fn open(&mut self, from: StateId, var: VarId, to: StateId) {
        assert!((var as usize) < self.num_vars, "variable {var} out of range");
        self.push(from, VAction::Open(var), to);
    }

    /// Adds a close-marker transition `from --x⊣--> to`.
    pub fn close(&mut self, from: StateId, var: VarId, to: StateId) {
        assert!((var as usize) < self.num_vars, "variable {var} out of range");
        self.push(from, VAction::Close(var), to);
    }

    fn push(&mut self, from: StateId, action: VAction, to: StateId) {
        assert!((from as usize) < self.num_states, "source state {from} does not exist");
        assert!((to as usize) < self.num_states, "target state {to} does not exist");
        self.transitions.push((from, action, to));
    }

    /// Finalizes the automaton.
    pub fn build(self) -> Result<VSetAutomaton, VSetBuildError> {
        if self.num_states == 0 {
            return Err(VSetBuildError::NoStates);
        }
        if self.accepting.is_empty() {
            return Err(VSetBuildError::NoAcceptingStates);
        }
        let m = self.num_states;
        let k = self.alphabet.size();
        let mut read = vec![vec![Vec::new(); m]; k];
        let mut open = vec![vec![Vec::new(); m]; self.num_vars];
        let mut close = vec![vec![Vec::new(); m]; self.num_vars];
        for (from, action, to) in self.transitions {
            let list = match action {
                VAction::Read(sym) => &mut read[sym as usize][from as usize],
                VAction::Open(x) => &mut open[x as usize][from as usize],
                VAction::Close(x) => &mut close[x as usize][from as usize],
            };
            list.push(to);
        }
        for table in [&mut read, &mut open, &mut close] {
            for per_state in table.iter_mut() {
                for list in per_state.iter_mut() {
                    list.sort_unstable();
                    list.dedup();
                }
            }
        }
        let mut accepting = vec![false; m];
        for q in self.accepting {
            accepting[q as usize] = true;
        }
        Ok(VSetAutomaton {
            alphabet: self.alphabet,
            num_vars: self.num_vars,
            num_states: m,
            initial: self.initial.unwrap_or(0),
            accepting,
            read,
            open,
            close,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_validation() {
        let b = VSetBuilder::new(Alphabet::binary(), 1);
        assert_eq!(b.build().unwrap_err(), VSetBuildError::NoStates);
        let mut b = VSetBuilder::new(Alphabet::binary(), 1);
        b.add_state();
        assert_eq!(b.build().unwrap_err(), VSetBuildError::NoAcceptingStates);
    }

    #[test]
    #[should_panic(expected = "at most 3 variables")]
    fn too_many_vars_panics() {
        VSetBuilder::new(Alphabet::binary(), 4);
    }

    #[test]
    #[should_panic(expected = "variable 2 out of range")]
    fn var_out_of_range_panics() {
        let mut b = VSetBuilder::new(Alphabet::binary(), 1);
        let q = b.add_state();
        b.open(q, 2, q);
    }

    #[test]
    fn adjacency_is_deduplicated() {
        let mut b = VSetBuilder::new(Alphabet::binary(), 1);
        let q = b.add_state();
        b.set_initial(q);
        b.add_accepting(q);
        b.read(q, 0, q);
        b.read(q, 0, q);
        b.open(q, 0, q);
        let vset = b.build().unwrap();
        assert_eq!(vset.read[0][0], vec![0]);
        assert_eq!(vset.open[0][0], vec![0]);
        assert!(vset.is_accepting(0));
    }
}
