//! Spans and span tuples — the outputs of a document spanner.

use std::fmt;

/// A span `[begin, end)` over document positions (`0 ≤ begin ≤ end ≤ n`).
///
/// Matches the document-spanner literature's convention: a span selects
/// the (possibly empty) substring between two cut points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// First selected position.
    pub begin: usize,
    /// One past the last selected position.
    pub end: usize,
}

impl Span {
    /// Length of the selected substring.
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// True iff the span selects the empty substring.
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.begin, self.end)
    }
}

/// One answer of a spanner: a span for every variable, indexed by
/// [`crate::VarId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanTuple {
    /// `spans[x]` is variable `x`'s span.
    pub spans: Vec<Span>,
}

impl SpanTuple {
    /// Extracts the selected substrings from a document given as symbols.
    pub fn project<'a, T>(&self, document: &'a [T]) -> Vec<&'a [T]> {
        self.spans.iter().map(|s| &document[s.begin..s.end]).collect()
    }
}

impl fmt::Display for SpanTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "x{i}={s}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_geometry() {
        let s = Span { begin: 2, end: 5 };
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(Span { begin: 4, end: 4 }.is_empty());
        assert_eq!(s.to_string(), "[2, 5)");
    }

    #[test]
    fn tuple_projection() {
        let doc = [1u8, 0, 1, 1, 0];
        let t = SpanTuple { spans: vec![Span { begin: 0, end: 2 }, Span { begin: 2, end: 4 }] };
        assert_eq!(t.project(&doc), vec![&[1u8, 0][..], &[1u8, 1][..]]);
        assert_eq!(t.to_string(), "(x0=[0, 2), x1=[2, 4))");
    }

    #[test]
    fn tuple_ordering_is_lexicographic() {
        let a = SpanTuple { spans: vec![Span { begin: 0, end: 1 }] };
        let b = SpanTuple { spans: vec![Span { begin: 0, end: 2 }] };
        assert!(a < b);
    }
}
