//! Document spanners: counting and sampling information-extraction
//! results via #NFA.
//!
//! The paper's §1 lists information extraction among #NFA's application
//! areas (ref \[4\]) — and counting the answers of a *document spanner*
//! was the headline application of the Arenas–Croquevielle–Jayaram–
//! Riveros FPRAS this paper accelerates. A spanner runs an automaton
//! with *variable markers* over a document and extracts tuples of spans
//! (intervals); one document can have exponentially many answer tuples,
//! several runs can produce the *same* tuple (ambiguity!), and so
//! counting answers is exactly the #NFA regime: easy to overcount, #P-
//! hard to count, FPRAS-able to approximate.
//!
//! The pipeline:
//!
//! * [`vset`] — variable-set automata (`VSetAutomaton`): NFAs whose
//!   transitions either read a document symbol or perform a marker
//!   operation `⊢x` (open) / `x⊣` (close);
//! * [`compile`] — the (automaton, document) → #NFA reduction: answers
//!   of the spanner on a length-`n` document correspond one-to-one to
//!   the length-`(n+1)` words of an NFA over the *marker-set alphabet*
//!   (which set of opens/closes fires before each position);
//! * [`count`] — exact counting, FPRAS estimation, and almost-uniform
//!   sampling of answer tuples through that reduction.

pub mod compile;
pub mod count;
pub mod span;
pub mod vset;

pub use compile::{compile_spanner, CompiledSpanner, SpannerError};
pub use count::{
    count_answers_exact, enumerate_answers, estimate_answers, sample_answers, SpannerEstimate,
    SpannerFprasError,
};
pub use span::{Span, SpanTuple};
pub use vset::{VSetAutomaton, VSetBuilder, VarId};
