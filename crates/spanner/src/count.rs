//! Counting, estimating and sampling spanner answers.
//!
//! Three evaluation routes over the compiled reduction, mirroring the
//! workspace's counter lineup: exact (determinization DP — fine for
//! small documents, exponential in the worst case), FPRAS (the point of
//! this repository: polynomial for *every* spanner and document), and a
//! brute-force run enumerator kept as test ground truth.

use crate::compile::{compile_spanner, SpannerError};
use crate::span::{Span, SpanTuple};
use crate::vset::VSetAutomaton;
use fpras_automata::exact::count_exact;
use fpras_automata::{StateId, Word};
use fpras_core::{FprasError, FprasRun, Params, UniformGenerator};
use fpras_numeric::{BigUint, ExtFloat};
use rand::Rng;
use std::collections::BTreeSet;

/// Exact number of answer tuples of `vset` on `document`.
///
/// Runs the determinization DP on the compiled NFA; inherits its
/// worst-case exponential blow-up (panics on the subset cap are turned
/// into an error by the caller if needed — documents at test scale never
/// hit it).
///
/// ```
/// use fpras_automata::{Alphabet, Word};
/// use fpras_spanner::{count_answers_exact, VSetBuilder};
///
/// // ⊢x 1 x⊣ anywhere: one answer per 1 in the document.
/// let mut b = VSetBuilder::new(Alphabet::binary(), 1);
/// let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
/// b.set_initial(s[0]);
/// b.add_accepting(s[3]);
/// for sym in [0, 1] {
///     b.read(s[0], sym, s[0]);
///     b.read(s[3], sym, s[3]);
/// }
/// b.open(s[0], 0, s[1]);
/// b.read(s[1], 1, s[2]);
/// b.close(s[2], 0, s[3]);
/// let vset = b.build().unwrap();
///
/// let doc = Word::from_symbols(vec![1, 0, 1, 1]);
/// assert_eq!(count_answers_exact(&vset, &doc).unwrap().to_u64(), Some(3));
/// ```
pub fn count_answers_exact(vset: &VSetAutomaton, document: &Word) -> Result<BigUint, SpannerError> {
    let compiled = compile_spanner(vset, document)?;
    Ok(count_exact(&compiled.nfa, compiled.word_len())
        .expect("document-scale instances stay under the subset cap"))
}

/// Result of an approximate answer count.
#[derive(Debug, Clone)]
pub struct SpannerEstimate {
    /// The `(1±ε)` estimate of the number of distinct answer tuples.
    pub estimate: ExtFloat,
    /// States of the compiled #NFA instance.
    pub nfa_states: usize,
    /// Word length of the reduction (`document length + 1`).
    pub word_len: usize,
}

/// FPRAS-estimates the number of answers within `(1±ε)` w.p. `1−δ`.
pub fn estimate_answers<R: Rng + ?Sized>(
    vset: &VSetAutomaton,
    document: &Word,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Result<SpannerEstimate, SpannerFprasError> {
    let compiled = compile_spanner(vset, document).map_err(SpannerFprasError::Spanner)?;
    let params = Params::practical(eps, delta, compiled.nfa.num_states(), compiled.word_len());
    let run = FprasRun::run(&compiled.nfa, compiled.word_len(), &params, rng)
        .map_err(SpannerFprasError::Fpras)?;
    Ok(SpannerEstimate {
        estimate: run.estimate(),
        nfa_states: compiled.nfa.num_states(),
        word_len: compiled.word_len(),
    })
}

/// Draws up to `count` almost-uniform answer tuples (fewer if the
/// spanner has no answers on this document).
pub fn sample_answers<R: Rng + ?Sized>(
    vset: &VSetAutomaton,
    document: &Word,
    count: usize,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Result<Vec<SpanTuple>, SpannerFprasError> {
    let compiled = compile_spanner(vset, document).map_err(SpannerFprasError::Spanner)?;
    let params = Params::practical(eps, delta, compiled.nfa.num_states(), compiled.word_len());
    let run = FprasRun::run(&compiled.nfa, compiled.word_len(), &params, rng)
        .map_err(SpannerFprasError::Fpras)?;
    let mut generator = UniformGenerator::new(run);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        match generator.generate(rng) {
            Some(word) => out.push(
                compiled
                    .decode(&word)
                    .expect("generated words of a functional spanner decode to tuples"),
            ),
            None => break,
        }
    }
    Ok(out)
}

/// Combined error type for the FPRAS entry points.
#[derive(Debug)]
pub enum SpannerFprasError {
    /// Compilation/decoding failed.
    Spanner(SpannerError),
    /// The FPRAS itself failed.
    Fpras(FprasError),
}

impl std::fmt::Display for SpannerFprasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpannerFprasError::Spanner(e) => write!(f, "{e}"),
            SpannerFprasError::Fpras(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpannerFprasError {}

/// Brute-force ground truth: enumerates every *distinct* answer tuple by
/// exploring all runs (exponential; test-sized documents only).
pub fn enumerate_answers(vset: &VSetAutomaton, document: &Word) -> BTreeSet<SpanTuple> {
    let mut answers = BTreeSet::new();
    let v = vset.num_vars();
    let mut begin: Vec<Option<usize>> = vec![None; v];
    let mut end: Vec<Option<usize>> = vec![None; v];
    explore(vset, document, vset.initial(), 0, &mut begin, &mut end, &mut answers);
    answers
}

#[allow(clippy::too_many_arguments)]
fn explore(
    vset: &VSetAutomaton,
    doc: &Word,
    q: StateId,
    pos: usize,
    begin: &mut Vec<Option<usize>>,
    end: &mut Vec<Option<usize>>,
    answers: &mut BTreeSet<SpanTuple>,
) {
    // Accept: end of document, all variables assigned.
    if pos == doc.len()
        && vset.is_accepting(q)
        && begin.iter().all(Option::is_some)
        && end.iter().all(Option::is_some)
    {
        answers.insert(SpanTuple {
            spans: begin
                .iter()
                .zip(end.iter())
                .map(|(b, e)| Span { begin: b.unwrap(), end: e.unwrap() })
                .collect(),
        });
    }
    // Marker moves (don't consume input).
    for x in 0..vset.num_vars() {
        if begin[x].is_none() {
            for &t in &vset.open[x][q as usize] {
                begin[x] = Some(pos);
                explore(vset, doc, t, pos, begin, end, answers);
                begin[x] = None;
            }
        }
        if begin[x].is_some() && end[x].is_none() {
            for &t in &vset.close[x][q as usize] {
                end[x] = Some(pos);
                explore(vset, doc, t, pos, begin, end, answers);
                end[x] = None;
            }
        }
    }
    // Read moves.
    if pos < doc.len() {
        let sym = doc.symbols()[pos];
        for &t in &vset.read[sym as usize][q as usize] {
            explore(vset, doc, t, pos + 1, begin, end, answers);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vset::VSetBuilder;
    use fpras_automata::Alphabet;
    use rand::{rngs::SmallRng, RngExt, SeedableRng};

    /// `.* ⊢x 1+ x⊣ .*` — one non-empty all-ones span.
    fn ones_span() -> VSetAutomaton {
        let mut b = VSetBuilder::new(Alphabet::binary(), 1);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        b.set_initial(s0);
        b.add_accepting(s3);
        for sym in [0, 1] {
            b.read(s0, sym, s0);
            b.read(s3, sym, s3);
        }
        b.open(s0, 0, s1);
        b.read(s1, 1, s2);
        b.read(s2, 1, s2);
        b.close(s2, 0, s3);
        b.build().unwrap()
    }

    /// Two variables: `⊢x 1+ x⊣ 0* ⊢y 1+ y⊣` anchored with free ends.
    fn two_runs() -> VSetAutomaton {
        let mut b = VSetBuilder::new(Alphabet::binary(), 2);
        let s: Vec<_> = (0..8).map(|_| b.add_state()).collect();
        b.set_initial(s[0]);
        b.add_accepting(s[7]);
        for sym in [0, 1] {
            b.read(s[0], sym, s[0]);
            b.read(s[7], sym, s[7]);
        }
        b.open(s[0], 0, s[1]);
        b.read(s[1], 1, s[2]);
        b.read(s[2], 1, s[2]);
        b.close(s[2], 0, s[3]);
        b.read(s[3], 0, s[3]);
        b.open(s[3], 1, s[4]);
        b.read(s[4], 1, s[5]);
        b.read(s[5], 1, s[5]);
        b.close(s[5], 1, s[6]);
        // Epsilon-like hop to the trailing .* via a zero-width pair is
        // not available; reuse s6 -> s7 on both symbols and make s6
        // accepting for end-of-document answers.
        b.add_accepting(s[6]);
        for sym in [0, 1] {
            b.read(s[6], sym, s[7]);
        }
        b.build().unwrap()
    }

    #[test]
    fn exact_matches_enumeration_on_fixtures() {
        let docs = [
            vec![0, 1, 1, 0, 1],
            vec![1, 1, 1, 1],
            vec![0, 0, 0],
            vec![1],
            vec![1, 0, 1, 1, 0, 1, 1, 1],
        ];
        for vset in [ones_span(), two_runs()] {
            for doc_syms in &docs {
                let doc = Word::from_symbols(doc_syms.clone());
                let exact = count_answers_exact(&vset, &doc).unwrap();
                let enumerated = enumerate_answers(&vset, &doc);
                assert_eq!(exact.to_u64().unwrap() as usize, enumerated.len(), "doc {doc_syms:?}");
            }
        }
    }

    #[test]
    fn exact_matches_enumeration_on_random_documents() {
        let mut rng = SmallRng::seed_from_u64(2024);
        let vset = two_runs();
        for case in 0..20 {
            let len = 2 + case % 7;
            let doc = Word::from_symbols((0..len).map(|_| rng.random_range(0..2u8)).collect());
            let exact = count_answers_exact(&vset, &doc).unwrap();
            let enumerated = enumerate_answers(&vset, &doc);
            assert_eq!(exact.to_u64().unwrap() as usize, enumerated.len(), "case {case}");
        }
    }

    #[test]
    fn ambiguity_does_not_inflate_the_count() {
        // A deliberately ambiguous spanner: two redundant copies of the
        // same extraction branch. Runs double, answers must not.
        let mut b = VSetBuilder::new(Alphabet::binary(), 1);
        let init = b.add_state();
        b.set_initial(init);
        for _ in 0..2 {
            let s1 = b.add_state();
            let s2 = b.add_state();
            let s3 = b.add_state();
            b.add_accepting(s3);
            b.open(init, 0, s1);
            b.read(s1, 1, s2);
            b.close(s2, 0, s3);
            for sym in [0, 1] {
                b.read(s3, sym, s3);
            }
        }
        // Also allow skipping prefix.
        let vset = {
            let mut b2 = b.clone();
            for sym in [0, 1] {
                b2.read(init, sym, init);
            }
            b2.build().unwrap()
        };
        let doc = Word::from_symbols(vec![1, 1, 1]);
        // Answers: spans [0,1), [1,2), [2,3) → 3 (each counted once).
        assert_eq!(count_answers_exact(&vset, &doc).unwrap().to_u64(), Some(3));
        assert_eq!(enumerate_answers(&vset, &doc).len(), 3);
    }

    #[test]
    fn fpras_estimate_tracks_exact() {
        let vset = ones_span();
        // A document with many 1-runs → a healthy answer count.
        let doc = Word::from_symbols(vec![1, 1, 0, 1, 1, 1, 0, 1, 1, 0, 1, 1, 1, 1]);
        let exact = count_answers_exact(&vset, &doc).unwrap().to_f64();
        assert!(exact >= 10.0);
        let mut rng = SmallRng::seed_from_u64(55);
        let est = estimate_answers(&vset, &doc, 0.3, 0.1, &mut rng).unwrap();
        let err = (est.estimate.to_f64() - exact).abs() / exact;
        assert!(err < 0.3, "err {err} (exact {exact}, est {})", est.estimate);
    }

    #[test]
    fn sampled_tuples_are_genuine_answers() {
        let vset = two_runs();
        let doc = Word::from_symbols(vec![1, 1, 0, 0, 1, 1, 1]);
        let truth = enumerate_answers(&vset, &doc);
        assert!(!truth.is_empty());
        let mut rng = SmallRng::seed_from_u64(56);
        let samples = sample_answers(&vset, &doc, 50, 0.3, 0.1, &mut rng).unwrap();
        assert!(!samples.is_empty());
        for tuple in samples {
            assert!(truth.contains(&tuple), "sampled {tuple} is not an answer");
        }
    }

    #[test]
    fn empty_answer_set_yields_no_samples() {
        let vset = ones_span();
        let doc = Word::from_symbols(vec![0, 0]);
        let mut rng = SmallRng::seed_from_u64(57);
        let samples = sample_answers(&vset, &doc, 5, 0.3, 0.1, &mut rng).unwrap();
        assert!(samples.is_empty());
        let est = estimate_answers(&vset, &doc, 0.3, 0.1, &mut rng).unwrap();
        assert!(est.estimate.is_zero());
    }
}
