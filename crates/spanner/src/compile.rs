//! The (VSet-automaton, document) → #NFA reduction.
//!
//! Fix a document `d` of length `n`. An answer tuple is determined by
//! *which markers fire at which cut point* — there are `n+1` cut points
//! (before each symbol and one at the end), and at each cut a set of
//! opens and closes fires. Encode each cut's marker set as one symbol of
//! the **marker alphabet** (`4^num_vars` symbols: an open mask and a
//! close mask); an answer then *is* a word of length `n+1`.
//!
//! The compiled NFA accepts exactly the marker words some accepting run
//! of the VSet-automaton produces on `d`: its states are pairs
//! `(vset state, cut index)`, a transition on marker symbol `M` performs
//! `M`'s operations (in any order — a small BFS) and then reads `d[i]`,
//! and the final cut's symbol must lead into an accepting state. Several
//! runs producing the same marker word collapse to the *same* accepted
//! word — the reduction converts run-ambiguity into word-multiplicity,
//! which is precisely what #NFA counts correctly and path counting does
//! not.

use crate::span::{Span, SpanTuple};
use crate::vset::VSetAutomaton;
use fpras_automata::alphabet::Alphabet;
use fpras_automata::{Nfa, NfaBuilder, StateId, Word};
use std::fmt;

/// Errors from spanner compilation and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpannerError {
    /// The document contains a symbol outside the spanner's alphabet.
    DocumentSymbol {
        /// Offending position.
        position: usize,
    },
    /// A marker word does not describe a well-formed tuple (a variable
    /// opened twice, closed before opening, or left open). Possible only
    /// for VSet-automata that are not functional.
    MalformedTuple {
        /// The variable at fault.
        var: u8,
    },
}

impl fmt::Display for SpannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpannerError::DocumentSymbol { position } => {
                write!(f, "document symbol at position {position} outside the spanner alphabet")
            }
            SpannerError::MalformedTuple { var } => {
                write!(f, "marker word does not assign variable x{var} exactly once")
            }
        }
    }
}

impl std::error::Error for SpannerError {}

/// A compiled spanner instance: the #NFA whose length-`(n+1)` slice is
/// in bijection with the spanner's answers on the document.
#[derive(Debug)]
pub struct CompiledSpanner {
    /// The reduced automaton over the marker alphabet.
    pub nfa: Nfa,
    /// Document length `n`.
    pub doc_len: usize,
    /// Number of spanner variables.
    pub num_vars: usize,
}

impl CompiledSpanner {
    /// The slice length whose words are the answers: `n + 1` cut points.
    pub fn word_len(&self) -> usize {
        self.doc_len + 1
    }

    /// Decodes an accepted marker word back into a span tuple.
    ///
    /// Fails with [`SpannerError::MalformedTuple`] if some variable is
    /// not opened and closed exactly once (cannot happen for words of a
    /// functional VSet-automaton's compiled language).
    pub fn decode(&self, word: &Word) -> Result<SpanTuple, SpannerError> {
        assert_eq!(word.len(), self.word_len(), "marker word must cover every cut point");
        let v = self.num_vars;
        let mut begin: Vec<Option<usize>> = vec![None; v];
        let mut end: Vec<Option<usize>> = vec![None; v];
        for (cut, &sym) in word.symbols().iter().enumerate() {
            let (opens, closes) = decode_masks(sym, v);
            for x in 0..v {
                if opens >> x & 1 == 1 {
                    if begin[x].is_some() {
                        return Err(SpannerError::MalformedTuple { var: x as u8 });
                    }
                    begin[x] = Some(cut);
                }
                if closes >> x & 1 == 1 {
                    if end[x].is_some() || begin[x].is_none() {
                        return Err(SpannerError::MalformedTuple { var: x as u8 });
                    }
                    end[x] = Some(cut);
                }
            }
        }
        let mut spans = Vec::with_capacity(v);
        for x in 0..v {
            match (begin[x], end[x]) {
                (Some(b), Some(e)) => spans.push(Span { begin: b, end: e }),
                _ => return Err(SpannerError::MalformedTuple { var: x as u8 }),
            }
        }
        Ok(SpanTuple { spans })
    }
}

/// Splits a marker symbol into `(opens_mask, closes_mask)`.
fn decode_masks(sym: u8, num_vars: usize) -> (usize, usize) {
    let closes = (sym as usize) & ((1 << num_vars) - 1);
    let opens = (sym as usize) >> num_vars;
    (opens, closes)
}

/// Builds the marker alphabet for `num_vars` variables: symbol
/// `closes | opens << num_vars`, with generated printable names.
pub(crate) fn marker_alphabet(num_vars: usize) -> Alphabet {
    let size = 1usize << (2 * num_vars);
    let pool: Vec<char> = ('!'..='~').collect();
    Alphabet::with_names(pool[..size].to_vec())
}

/// States of the VSet-automaton reachable from `q` by performing every
/// operation in `(opens, closes)` exactly once, in any order.
fn marker_reach(vset: &VSetAutomaton, q: StateId, opens: usize, closes: usize) -> Vec<StateId> {
    // BFS over (state, remaining opens, remaining closes).
    let mut seen = std::collections::HashSet::new();
    let mut queue = vec![(q, opens, closes)];
    let mut out = Vec::new();
    seen.insert((q, opens, closes));
    while let Some((s, o, c)) = queue.pop() {
        if o == 0 && c == 0 {
            out.push(s);
            continue;
        }
        for x in 0..vset.num_vars {
            if o >> x & 1 == 1 {
                for &t in &vset.open[x][s as usize] {
                    let key = (t, o & !(1 << x), c);
                    if seen.insert(key) {
                        queue.push(key);
                    }
                }
            }
            if c >> x & 1 == 1 {
                for &t in &vset.close[x][s as usize] {
                    let key = (t, o, c & !(1 << x));
                    if seen.insert(key) {
                        queue.push(key);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Compiles `(vset, document)` into the answer-counting NFA.
pub fn compile_spanner(
    vset: &VSetAutomaton,
    document: &Word,
) -> Result<CompiledSpanner, SpannerError> {
    for (position, &sym) in document.symbols().iter().enumerate() {
        if (sym as usize) >= vset.alphabet.size() {
            return Err(SpannerError::DocumentSymbol { position });
        }
    }
    let n = document.len();
    let m = vset.num_states;
    let v = vset.num_vars;
    let alphabet = marker_alphabet(v);
    let num_marker_syms = alphabet.size() as u8;

    let mut b = NfaBuilder::new(alphabet);
    // State layout: (q, cut) at id cut·m + q, plus the single final state.
    b.add_states(m * (n + 1) + 1);
    let state = |q: StateId, cut: usize| -> StateId { (cut * m) as StateId + q };
    let final_state = (m * (n + 1)) as StateId;
    b.set_initial(state(vset.initial, 0));
    b.add_accepting(final_state);

    for cut in 0..=n {
        for q in 0..m as StateId {
            for sym in 0..num_marker_syms {
                let (opens, closes) = decode_masks(sym, v);
                let mids = marker_reach(vset, q, opens, closes);
                if cut < n {
                    let doc_sym = document.symbols()[cut];
                    for r in mids {
                        for &t in &vset.read[doc_sym as usize][r as usize] {
                            b.add_transition(state(q, cut), sym, state(t, cut + 1));
                        }
                    }
                } else if mids.iter().any(|&r| vset.is_accepting(r)) {
                    b.add_transition(state(q, n), sym, final_state);
                }
            }
        }
    }
    let nfa = b.build().expect("compiled spanner automaton is non-degenerate");
    Ok(CompiledSpanner { nfa, doc_len: n, num_vars: v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vset::VSetBuilder;
    use fpras_automata::exact::count_exact;

    /// `.* ⊢x 1+ x⊣ .*` — extract a non-empty all-ones span.
    fn ones_span() -> VSetAutomaton {
        let mut b = VSetBuilder::new(Alphabet::binary(), 1);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        b.set_initial(s0);
        b.add_accepting(s3);
        for sym in [0, 1] {
            b.read(s0, sym, s0);
            b.read(s3, sym, s3);
        }
        b.open(s0, 0, s1);
        b.read(s1, 1, s2);
        b.read(s2, 1, s2);
        b.close(s2, 0, s3);
        b.build().unwrap()
    }

    #[test]
    fn marker_alphabet_size() {
        assert_eq!(marker_alphabet(0).size(), 1);
        assert_eq!(marker_alphabet(1).size(), 4);
        assert_eq!(marker_alphabet(2).size(), 16);
        assert_eq!(marker_alphabet(3).size(), 64);
    }

    #[test]
    fn mask_round_trip() {
        for v in 1..=3usize {
            for sym in 0..(1u8 << (2 * v)) {
                let (o, c) = decode_masks(sym, v);
                assert_eq!(((o << v) | c) as u8, sym);
            }
        }
    }

    #[test]
    fn ones_span_counts_runs_of_ones() {
        // Document 0 1 1 0 1: spans of 1s = [1,2) [1,3) [2,3) [4,5) → 4.
        let vset = ones_span();
        let doc = Word::from_symbols(vec![0, 1, 1, 0, 1]);
        let compiled = compile_spanner(&vset, &doc).unwrap();
        let count = count_exact(&compiled.nfa, compiled.word_len()).unwrap();
        assert_eq!(count.to_u64(), Some(4));
    }

    #[test]
    fn all_zero_document_has_no_answers() {
        let vset = ones_span();
        let doc = Word::from_symbols(vec![0, 0, 0]);
        let compiled = compile_spanner(&vset, &doc).unwrap();
        assert!(count_exact(&compiled.nfa, compiled.word_len()).unwrap().is_zero());
    }

    #[test]
    fn empty_document_edge_case() {
        let vset = ones_span();
        let doc = Word::empty();
        let compiled = compile_spanner(&vset, &doc).unwrap();
        assert_eq!(compiled.word_len(), 1);
        assert!(count_exact(&compiled.nfa, 1).unwrap().is_zero());
    }

    #[test]
    fn document_symbol_validation() {
        let vset = ones_span();
        let doc = Word::from_symbols(vec![0, 7]);
        assert_eq!(
            compile_spanner(&vset, &doc).unwrap_err(),
            SpannerError::DocumentSymbol { position: 1 }
        );
    }

    #[test]
    fn decode_rejects_malformed() {
        let vset = ones_span();
        let doc = Word::from_symbols(vec![1]);
        let compiled = compile_spanner(&vset, &doc).unwrap();
        // Symbol 0 = no ops at either cut: x never opened.
        let bad = Word::from_symbols(vec![0, 0]);
        assert_eq!(compiled.decode(&bad).unwrap_err(), SpannerError::MalformedTuple { var: 0 });
        // Close before open.
        let bad = Word::from_symbols(vec![1, 2]);
        assert!(compiled.decode(&bad).is_err());
    }

    #[test]
    fn decode_round_trip() {
        let vset = ones_span();
        let doc = Word::from_symbols(vec![1, 1]);
        let compiled = compile_spanner(&vset, &doc).unwrap();
        // Open at cut 0 (sym = 1<<1 = 2), close at cut 1 (sym = 1), nothing at cut 2.
        let word = Word::from_symbols(vec![2, 1, 0]);
        let tuple = compiled.decode(&word).unwrap();
        assert_eq!(tuple.spans, vec![Span { begin: 0, end: 1 }]);
    }
}
