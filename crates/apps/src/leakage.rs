//! Quantitative information-flow estimation via #NFA.
//!
//! Paper §1 "beyond databases": estimating information leakage of
//! software ([5, 7, 15]) reduces to model counting. For a *deterministic*
//! program, Smith's min-entropy leakage to an observer of the output is
//! `log₂ |feasible outputs|`. When the feasible-output set of length-`n`
//! observations is described by an automaton (e.g. the language of
//! strings a sanitizer can emit, or the observable traces of a protocol),
//! leakage estimation is exactly #NFA — and an `(1±ε)` count gives the
//! leakage within `±log₂(1+ε) ≤ ε/ln 2` bits.

use fpras_automata::Nfa;
use fpras_core::{FprasError, FprasRun, Params};
use rand::Rng;

/// An estimated leakage figure.
#[derive(Debug, Clone, Copy)]
pub struct LeakageEstimate {
    /// Estimated min-entropy leakage in bits: `log₂ #outputs`.
    pub bits: f64,
    /// Half-width of the bit-error interval implied by ε.
    pub bit_error: f64,
    /// `log₂` of the raw output-count estimate (equals `bits`).
    pub count_log2: f64,
    /// Fraction of the `n`-bit observation space that is feasible
    /// (`2^{bits - n·log₂ k}`).
    pub density_log2: f64,
}

/// Estimates the min-entropy leakage of a deterministic channel whose
/// feasible length-`n` outputs form `L(A_n)`.
///
/// Returns `None` when the output set is empty (no observation possible,
/// leakage undefined).
pub fn estimate_leakage<R: Rng + ?Sized>(
    outputs: &Nfa,
    n: usize,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Result<Option<LeakageEstimate>, FprasError> {
    let params = Params::practical(eps, delta, outputs.num_states(), n);
    let run = FprasRun::run(outputs, n, &params, rng)?;
    let est = run.estimate();
    if est.is_zero() {
        return Ok(None);
    }
    let count_log2 = est.log2();
    let space_log2 = n as f64 * (outputs.alphabet().size() as f64).log2();
    Ok(Some(LeakageEstimate {
        bits: count_log2,
        bit_error: (1.0 + eps).log2(),
        count_log2,
        density_log2: count_log2 - space_log2,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpras_automata::regex::compile_regex;
    use fpras_automata::Alphabet;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn full_channel_leaks_n_bits() {
        let nfa = compile_regex("(0|1)*", &Alphabet::binary()).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 12;
        let est = estimate_leakage(&nfa, n, 0.2, 0.1, &mut rng).unwrap().unwrap();
        assert!((est.bits - n as f64).abs() < 0.4, "bits {}", est.bits);
        assert!(est.density_log2.abs() < 0.4);
    }

    #[test]
    fn masked_channel_leaks_less() {
        // Sanitizer that forces every other symbol to 0: 2^(n/2) outputs.
        let nfa = compile_regex("((0|1)0)*", &Alphabet::binary()).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 12;
        let est = estimate_leakage(&nfa, n, 0.2, 0.1, &mut rng).unwrap().unwrap();
        assert!((est.bits - 6.0).abs() < 0.5, "bits {}", est.bits);
        assert!(est.density_log2 < -5.0);
    }

    #[test]
    fn empty_output_set_is_none() {
        // Odd-length outputs only, asked at even n.
        let nfa = compile_regex("(0|1)((0|1)(0|1))*", &Alphabet::binary()).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let est = estimate_leakage(&nfa, 8, 0.2, 0.1, &mut rng).unwrap();
        assert!(est.is_none());
    }

    #[test]
    fn bit_error_tracks_eps() {
        let nfa = compile_regex("(0|1)*", &Alphabet::binary()).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let est = estimate_leakage(&nfa, 6, 0.5, 0.1, &mut rng).unwrap().unwrap();
        assert!((est.bit_error - 1.5f64.log2()).abs() < 1e-12);
    }
}
