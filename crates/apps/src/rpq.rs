//! Counting and sampling answers to regular path queries.
//!
//! Paper §1, "Counting Answers to Regular Path Queries": given a graph
//! database with labeled edges, an RPQ `(u, R, v)` asks about the paths
//! from node `u` to node `v` whose label word matches the regex `R`,
//! bounded in length by some `n`. Counting those paths reduces to #NFA on
//! the product of (a) the graph viewed as an NFA with initial state `u`
//! and accepting state `v` and (b) the NFA `R` compiles to — the reduced
//! instance is linear in both the database and the query, which is why a
//! fast #NFA FPRAS directly yields a fast RPQ counter.
//!
//! Per-length counts are combined over `ℓ ∈ 0..=n` ("paths of length at
//! most n", as in the paper); each slice gets its own FPRAS run with the
//! confidence budget split evenly.

use fpras_automata::ops::product;
use fpras_automata::regex::{compile_regex, RegexError};
use fpras_automata::{Alphabet, Nfa, NfaBuilder, StateId, Word};
use fpras_core::{FprasError, FprasRun, Params, UniformGenerator};
use fpras_numeric::ExtFloat;
use fpras_workloads::LabeledGraph;
use rand::Rng;

/// A regular path query `(source, pattern, target)`.
#[derive(Debug, Clone)]
pub struct Rpq {
    /// Source node `u`.
    pub source: u32,
    /// Regex over edge labels (single-character label names `a, b, …`).
    pub pattern: String,
    /// Target node `v`.
    pub target: u32,
}

/// Errors from RPQ evaluation.
#[derive(Debug)]
pub enum RpqError {
    /// The pattern failed to parse/compile.
    Regex(RegexError),
    /// The FPRAS rejected its parameters.
    Fpras(FprasError),
    /// A query endpoint is not a node of the graph.
    BadEndpoint(u32),
}

impl std::fmt::Display for RpqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpqError::Regex(e) => write!(f, "{e}"),
            RpqError::Fpras(e) => write!(f, "{e}"),
            RpqError::BadEndpoint(v) => write!(f, "node {v} is not in the graph"),
        }
    }
}

impl std::error::Error for RpqError {}

/// Views the graph as an NFA: nodes become states, labeled edges become
/// transitions, `source` is initial and `target` accepting.
pub fn graph_to_nfa(graph: &LabeledGraph, source: u32, target: u32) -> Result<Nfa, RpqError> {
    if source as usize >= graph.nodes {
        return Err(RpqError::BadEndpoint(source));
    }
    if target as usize >= graph.nodes {
        return Err(RpqError::BadEndpoint(target));
    }
    let mut b = NfaBuilder::new(Alphabet::of_size(graph.labels));
    b.add_states(graph.nodes);
    b.set_initial(source as StateId);
    b.add_accepting(target as StateId);
    for &(f, l, t) in &graph.edges {
        b.add_transition(f, l, t);
    }
    b.build().map_err(|_| RpqError::BadEndpoint(target))
}

/// The product instance whose length-`ℓ` words are exactly the label
/// words of length-`ℓ` query answers.
pub fn rpq_instance(graph: &LabeledGraph, query: &Rpq) -> Result<Nfa, RpqError> {
    let graph_nfa = graph_to_nfa(graph, query.source, query.target)?;
    let query_nfa = compile_regex(&query.pattern, graph_nfa.alphabet()).map_err(RpqError::Regex)?;
    Ok(product(&graph_nfa, &query_nfa))
}

/// Result of an approximate RPQ count.
#[derive(Debug, Clone)]
pub struct RpqCount {
    /// Estimated number of answers of length at most `n`.
    pub total: ExtFloat,
    /// Per-length estimates, index `ℓ ∈ 0..=n`.
    pub per_length: Vec<ExtFloat>,
}

/// Estimates the number of label words of answer paths of length `≤ n`.
///
/// Note the count is over *label words*, matching the #NFA reduction; two
/// node-distinct paths with the same labels count once. (Counting
/// node-distinct paths needs the same reduction on an expanded alphabet —
/// see `rpq_instance` plus a node-annotated label set.)
pub fn count_answers<R: Rng + ?Sized>(
    graph: &LabeledGraph,
    query: &Rpq,
    n: usize,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Result<RpqCount, RpqError> {
    let instance = rpq_instance(graph, query)?;
    let per_slice_delta = delta / (n + 1) as f64;
    let mut per_length = Vec::with_capacity(n + 1);
    let mut total = ExtFloat::ZERO;
    for ell in 0..=n {
        let params = Params::practical(eps, per_slice_delta, instance.num_states(), ell);
        let run = FprasRun::run(&instance, ell, &params, rng).map_err(RpqError::Fpras)?;
        total = total + run.estimate();
        per_length.push(run.estimate());
    }
    Ok(RpqCount { total, per_length })
}

/// Samples an answer path's label word of exactly length `n`,
/// almost-uniformly over the answer set.
pub fn sample_answer<R: Rng + ?Sized>(
    graph: &LabeledGraph,
    query: &Rpq,
    n: usize,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Result<Option<Word>, RpqError> {
    let instance = rpq_instance(graph, query)?;
    let params = Params::practical(eps, delta, instance.num_states(), n);
    let run = FprasRun::run(&instance, n, &params, rng).map_err(RpqError::Fpras)?;
    let mut generator = UniformGenerator::new(run);
    Ok(generator.generate(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpras_automata::exact::count_exact;
    use rand::{rngs::SmallRng, SeedableRng};

    /// A 4-node diamond: 0 -a-> 1 -b-> 3, 0 -a-> 2 -b-> 3, 3 -a-> 0.
    fn diamond() -> LabeledGraph {
        LabeledGraph::new(4, 2, vec![(0, 0, 1), (1, 1, 3), (0, 0, 2), (2, 1, 3), (3, 0, 0)])
    }

    #[test]
    fn graph_nfa_language() {
        let g = diamond();
        let nfa = graph_to_nfa(&g, 0, 3).unwrap();
        let ab = Word::parse("ab", nfa.alphabet()).unwrap();
        assert!(nfa.accepts(&ab));
        // "ab" is realized by two node paths but is one label word.
        assert_eq!(count_exact(&nfa, 2).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn bad_endpoints_rejected() {
        let g = diamond();
        assert!(matches!(graph_to_nfa(&g, 9, 0), Err(RpqError::BadEndpoint(9))));
        assert!(matches!(graph_to_nfa(&g, 0, 9), Err(RpqError::BadEndpoint(9))));
    }

    #[test]
    fn count_answers_matches_exact() {
        let g = diamond();
        let query = Rpq { source: 0, pattern: "(ab)+a?".into(), target: 3 };
        let n = 8;
        let instance = rpq_instance(&g, &query).unwrap();
        let exact: f64 = (0..=n).map(|ell| count_exact(&instance, ell).unwrap().to_f64()).sum();
        let mut rng = SmallRng::seed_from_u64(40);
        let res = count_answers(&g, &query, n, 0.3, 0.2, &mut rng).unwrap();
        assert_eq!(res.per_length.len(), n + 1);
        let err = (res.total.to_f64() - exact).abs() / exact.max(1.0);
        assert!(err < 0.3, "err {err} (exact {exact}, est {})", res.total);
    }

    #[test]
    fn sample_answer_is_an_answer() {
        let g = diamond();
        let query = Rpq { source: 0, pattern: "(ab|aba)*".into(), target: 3 };
        let instance = rpq_instance(&g, &query).unwrap();
        let mut rng = SmallRng::seed_from_u64(41);
        for n in [2usize, 5, 7] {
            if count_exact(&instance, n).unwrap().is_zero() {
                continue;
            }
            let w = sample_answer(&g, &query, n, 0.3, 0.2, &mut rng).unwrap().unwrap();
            assert_eq!(w.len(), n);
            assert!(instance.accepts(&w), "sampled {w:?} is not an answer");
        }
    }

    #[test]
    fn bad_pattern_surfaces_regex_error() {
        let g = diamond();
        let query = Rpq { source: 0, pattern: "((".into(), target: 3 };
        assert!(matches!(rpq_instance(&g, &query), Err(RpqError::Regex(_))));
    }
}
