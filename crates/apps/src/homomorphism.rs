//! Probabilistic graph homomorphism via #NFA.
//!
//! Paper §1, "Probabilistic Graph Homomorphism": a probabilistic graph
//! `(H, π)` induces a distribution over subgraphs of `H` (every edge kept
//! independently with probability `π(e)`); given a query graph `G`, the
//! problem asks for the probability that a random subgraph admits a
//! homomorphism from `G`. For 1-way path queries the problem reduces to
//! #NFA (Amarilli–van Bremen–Meel \[1\]).
//!
//! This module implements the reduction for **1-way path queries with
//! pairwise-distinct edge labels** (the self-join-free case, mirroring
//! the PQE module's scope; see DESIGN.md §5). A path query
//! `a₁ … a_k` asks for a walk `v₀ →^{a₁} v₁ → … →^{a_k} v_k` whose edges
//! are all present. With distinct labels, each edge of `H` is relevant to
//! at most one walk position, so the events "layer i can use edge e" are
//! independent across layers and the layered PQE reduction is exact: we
//! build a tuple-independent database whose relation `R_i` holds the
//! edges labeled `a_i`, and delegate to [`crate::pqe`]. The resulting
//! #NFA instance is linear in `|H|` and `|G|` — exactly the blow-up the
//! paper's §1 quotes for this family of applications. Queries with
//! repeated labels require the full machinery of \[1\] and are rejected
//! with [`HomError::RepeatedLabel`].

use crate::pqe::{estimate_pqe, pqe_to_nfa, PqeError, ProbDatabase, ProbTuple};
use fpras_automata::Nfa;
use rand::Rng;
use std::collections::HashMap;

/// One probabilistic labeled edge of `H` with `Pr = num / 2^bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbEdge {
    /// Source vertex.
    pub src: u32,
    /// Destination vertex.
    pub dst: u32,
    /// Edge label (an arbitrary `u32` tag; queries refer to these).
    pub label: u32,
    /// Numerator of the dyadic probability.
    pub num: u32,
    /// Coin bits (denominator `2^bits`).
    pub bits: u32,
}

impl ProbEdge {
    /// The edge's presence probability.
    pub fn probability(&self) -> f64 {
        self.num as f64 / 2f64.powi(self.bits as i32)
    }
}

/// A probabilistic labeled graph `(H, π)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbGraph {
    /// Number of vertices (vertices are `0..vertices`).
    pub vertices: u32,
    /// The probabilistic edge set.
    pub edges: Vec<ProbEdge>,
}

/// A 1-way path query: the label sequence `a₁ … a_k` of the sought walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    /// Labels along the path, in walk order.
    pub labels: Vec<u32>,
}

/// Errors from the homomorphism pipeline.
#[derive(Debug)]
pub enum HomError {
    /// The query repeats a label; the self-join-free reduction does not
    /// apply (see module docs).
    RepeatedLabel(u32),
    /// The query is empty.
    EmptyQuery,
    /// An edge references a vertex outside `0..vertices`.
    BadEdge(String),
    /// The underlying PQE reduction failed.
    Pqe(PqeError),
}

impl std::fmt::Display for HomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HomError::RepeatedLabel(l) => {
                write!(f, "query label {l} repeats; only self-join-free path queries are supported")
            }
            HomError::EmptyQuery => write!(f, "path query must have at least one label"),
            HomError::BadEdge(msg) => write!(f, "bad edge: {msg}"),
            HomError::Pqe(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HomError {}

fn validate(graph: &ProbGraph, query: &PathQuery) -> Result<(), HomError> {
    if query.labels.is_empty() {
        return Err(HomError::EmptyQuery);
    }
    let mut seen = std::collections::HashSet::new();
    for &l in &query.labels {
        if !seen.insert(l) {
            return Err(HomError::RepeatedLabel(l));
        }
    }
    for e in &graph.edges {
        if e.src >= graph.vertices || e.dst >= graph.vertices {
            return Err(HomError::BadEdge(format!("vertex out of range in {e:?}")));
        }
    }
    Ok(())
}

/// Lowers `(graph, query)` to the tuple-independent database whose PQE
/// equals the homomorphism probability: relation `R_i` = the edges
/// labeled `a_i`. Edges with labels the query never uses are irrelevant
/// and dropped (they multiply both sides of the reduction by 1).
pub fn hom_to_database(graph: &ProbGraph, query: &PathQuery) -> Result<ProbDatabase, HomError> {
    validate(graph, query)?;
    let mut by_label: HashMap<u32, Vec<ProbTuple>> = HashMap::new();
    for e in &graph.edges {
        by_label.entry(e.label).or_default().push(ProbTuple {
            src: e.src,
            dst: e.dst,
            num: e.num,
            bits: e.bits,
        });
    }
    let tuples =
        query.labels.iter().map(|l| by_label.get(l).cloned().unwrap_or_default()).collect();
    Ok(ProbDatabase { adom: graph.vertices, tuples })
}

/// Builds the #NFA instance: the automaton over coin words and the word
/// length `n` (total coin bits of the relevant edges).
pub fn hom_to_nfa(graph: &ProbGraph, query: &PathQuery) -> Result<(Nfa, usize), HomError> {
    let db = hom_to_database(graph, query)?;
    pqe_to_nfa(&db).map_err(HomError::Pqe)
}

/// Exact homomorphism probability by world enumeration over the
/// *relevant* edges (`O(2^{#relevant})`) — ground truth for tests.
///
/// Unlike routing through [`pqe_exact`](crate::pqe::pqe_exact), this walks the graph directly
/// (layered reachability over present edges), so it independently checks
/// the graph→database lowering.
pub fn hom_exact(graph: &ProbGraph, query: &PathQuery) -> Result<f64, HomError> {
    validate(graph, query)?;
    let wanted: std::collections::HashSet<u32> = query.labels.iter().copied().collect();
    let relevant: Vec<&ProbEdge> =
        graph.edges.iter().filter(|e| wanted.contains(&e.label)).collect();
    assert!(relevant.len() <= 24, "exact enumeration limited to 24 relevant edges");
    let mut total = 0.0;
    for mask in 0u64..(1 << relevant.len()) {
        let mut prob = 1.0;
        for (j, e) in relevant.iter().enumerate() {
            let p = e.probability();
            prob *= if mask & (1 << j) != 0 { p } else { 1.0 - p };
        }
        if prob > 0.0 && world_has_walk(graph.vertices, &relevant, mask, &query.labels) {
            total += prob;
        }
    }
    Ok(total)
}

/// Layered reachability: does the world given by `mask` contain a walk
/// labeled `labels`, starting anywhere?
fn world_has_walk(vertices: u32, relevant: &[&ProbEdge], mask: u64, labels: &[u32]) -> bool {
    let mut reach = vec![true; vertices as usize];
    for &label in labels {
        let mut next = vec![false; vertices as usize];
        let mut any = false;
        for (j, e) in relevant.iter().enumerate() {
            if e.label == label && mask & (1 << j) != 0 && reach[e.src as usize] {
                next[e.dst as usize] = true;
                any = true;
            }
        }
        if !any {
            return false;
        }
        reach = next;
    }
    true
}

/// Result of an approximate homomorphism-probability computation.
#[derive(Debug, Clone)]
pub struct HomEstimate {
    /// Estimated probability that a random subgraph admits the query.
    pub probability: f64,
    /// Coin bits of the reduced #NFA instance.
    pub coin_bits: usize,
    /// States of the reduced #NFA instance.
    pub nfa_states: usize,
}

/// Approximates the homomorphism probability with the FPRAS.
pub fn estimate_hom<R: Rng + ?Sized>(
    graph: &ProbGraph,
    query: &PathQuery,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Result<HomEstimate, HomError> {
    let db = hom_to_database(graph, query)?;
    let est = estimate_pqe(&db, eps, delta, rng).map_err(HomError::Pqe)?;
    Ok(HomEstimate {
        probability: est.probability,
        coin_bits: est.coin_bits,
        nfa_states: est.nfa_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pqe::pqe_exact;
    use fpras_automata::exact::count_exact;
    use rand::{rngs::SmallRng, RngExt, SeedableRng};

    fn edge(src: u32, dst: u32, label: u32, num: u32, bits: u32) -> ProbEdge {
        ProbEdge { src, dst, label, num, bits }
    }

    #[test]
    fn single_edge_query() {
        // One edge labeled 7 with Pr = 3/4; query "7".
        let g = ProbGraph { vertices: 2, edges: vec![edge(0, 1, 7, 3, 2)] };
        let q = PathQuery { labels: vec![7] };
        assert!((hom_exact(&g, &q).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn two_hop_walk() {
        // 0 →a 1 →b 2, each Pr = 1/2: walk probability 1/4.
        let g = ProbGraph { vertices: 3, edges: vec![edge(0, 1, 0, 1, 1), edge(1, 2, 1, 1, 1)] };
        let q = PathQuery { labels: vec![0, 1] };
        assert!((hom_exact(&g, &q).unwrap() - 0.25).abs() < 1e-12);
        // The b-edge leaves from vertex 2, which no a-edge reaches: 0.
        let disconnected =
            ProbGraph { vertices: 4, edges: vec![edge(0, 1, 0, 1, 1), edge(2, 3, 1, 1, 1)] };
        assert_eq!(hom_exact(&disconnected, &q).unwrap(), 0.0);
    }

    #[test]
    fn parallel_witnesses_union() {
        // Two disjoint a-edges: Pr[∃ a-walk] = 1 − (1−p)(1−q).
        let g = ProbGraph { vertices: 4, edges: vec![edge(0, 1, 5, 1, 2), edge(2, 3, 5, 3, 2)] };
        let q = PathQuery { labels: vec![5] };
        let expect = 1.0 - (1.0 - 0.25) * (1.0 - 0.75);
        assert!((hom_exact(&g, &q).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn irrelevant_labels_are_dropped() {
        let g = ProbGraph { vertices: 3, edges: vec![edge(0, 1, 0, 1, 1), edge(1, 2, 99, 1, 4)] };
        let q = PathQuery { labels: vec![0] };
        let db = hom_to_database(&g, &q).unwrap();
        assert_eq!(db.total_bits(), 1, "only the label-0 edge contributes coins");
        assert!((hom_exact(&g, &q).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let g = ProbGraph { vertices: 2, edges: vec![edge(0, 1, 3, 1, 1)] };
        assert!(matches!(hom_exact(&g, &PathQuery { labels: vec![] }), Err(HomError::EmptyQuery)));
        assert!(matches!(
            hom_exact(&g, &PathQuery { labels: vec![3, 3] }),
            Err(HomError::RepeatedLabel(3))
        ));
        let bad = ProbGraph { vertices: 1, edges: vec![edge(0, 4, 3, 1, 1)] };
        assert!(matches!(
            hom_exact(&bad, &PathQuery { labels: vec![3] }),
            Err(HomError::BadEdge(_))
        ));
    }

    #[test]
    fn reduction_matches_exact_on_random_graphs() {
        // The NFA world count / 2^n must equal the brute-force walk
        // probability — two fully independent evaluation paths.
        let mut rng = SmallRng::seed_from_u64(31);
        for case in 0..25 {
            let vertices = 4u32;
            let k = 1 + case % 3;
            let labels: Vec<u32> = (0..k).collect();
            let edges: Vec<ProbEdge> = (0..rng.random_range(2..6usize))
                .map(|_| {
                    let bits = rng.random_range(1..3u32);
                    edge(
                        rng.random_range(0..vertices),
                        rng.random_range(0..vertices),
                        rng.random_range(0..k + 1), // sometimes irrelevant
                        rng.random_range(0..=(1 << bits)),
                        bits,
                    )
                })
                .collect();
            let g = ProbGraph { vertices, edges };
            let q = PathQuery { labels };
            let exact = hom_exact(&g, &q).unwrap();
            let (nfa, n) = hom_to_nfa(&g, &q).unwrap();
            let via_nfa = count_exact(&nfa, n).unwrap().to_f64() / 2f64.powi(n as i32);
            assert!(
                (via_nfa - exact).abs() < 1e-9,
                "case {case}: exact {exact} vs nfa {via_nfa} ({g:?}, {q:?})"
            );
        }
    }

    #[test]
    fn exact_agrees_with_pqe_route() {
        // hom_exact (graph walk) vs pqe_exact (database semantics) on the
        // lowered instance.
        let g = ProbGraph {
            vertices: 4,
            edges: vec![
                edge(0, 1, 0, 1, 1),
                edge(0, 2, 0, 3, 2),
                edge(1, 3, 1, 1, 1),
                edge(2, 3, 1, 1, 2),
            ],
        };
        let q = PathQuery { labels: vec![0, 1] };
        let via_graph = hom_exact(&g, &q).unwrap();
        let via_pqe = pqe_exact(&hom_to_database(&g, &q).unwrap()).unwrap();
        assert!((via_graph - via_pqe).abs() < 1e-12);
        assert!(via_graph > 0.0);
    }

    #[test]
    fn fpras_estimate_close() {
        let g = ProbGraph {
            vertices: 5,
            edges: vec![
                edge(0, 1, 0, 1, 1),
                edge(0, 2, 0, 3, 2),
                edge(1, 3, 1, 1, 1),
                edge(2, 3, 1, 3, 2),
                edge(3, 4, 2, 1, 1),
            ],
        };
        let q = PathQuery { labels: vec![0, 1, 2] };
        let exact = hom_exact(&g, &q).unwrap();
        assert!(exact > 0.0);
        let mut rng = SmallRng::seed_from_u64(41);
        let est = estimate_hom(&g, &q, 0.3, 0.2, &mut rng).unwrap();
        let err = (est.probability - exact).abs() / exact;
        assert!(err < 0.3, "err {err}: exact {exact}, est {}", est.probability);
        assert!(est.nfa_states > 0 && est.coin_bits == 7);
    }
}
