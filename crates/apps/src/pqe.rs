//! Probabilistic query evaluation (PQE) via #NFA.
//!
//! Paper §1, "Probabilistic Query Evaluation": for a tuple-independent
//! database `D` and a self-join-free path query
//! `Q = ∃x₀…x_k. R₁(x₀,x₁) ∧ … ∧ R_k(x_{k-1},x_k)`, PQE asks for the
//! probability that a random sub-database (every tuple kept
//! independently with its probability) satisfies `Q`. PQE is #P-hard
//! even for such queries; van Bremen–Meel \[17\] reduce it to #NFA.
//!
//! This module implements the reduction for **dyadic** tuple
//! probabilities `p_t = s_t / 2^{b_t}` (DESIGN.md §5): a possible world
//! is encoded as the concatenation of per-tuple coin blocks — tuple `t`
//! contributes `b_t` bits and is *present* iff its block, read as a
//! `b_t`-bit integer, is `< s_t`. Worlds are then exactly the length-`n`
//! binary words (`n = Σ b_t`), each with probability `2⁻ⁿ`, so
//!
//! `PQE(Q, D) = |L(A_n)| / 2ⁿ`
//!
//! for the NFA `A` that accepts a world-word iff the query holds in it.
//! `A` is the guess-and-verify automaton: blocks are laid out relation by
//! relation (`R₁` first), and the automaton nondeterministically commits
//! to a witness path, using one present tuple per layer; a per-tuple
//! comparison gadget decodes presence bit by bit. Its size is
//! `O(n · k · |adom|)` — polynomial in the database, so the #NFA FPRAS
//! turns into a PQE FPRAS.

use fpras_automata::{Alphabet, Nfa, NfaBuilder, StateId};
use fpras_core::{FprasError, FprasRun, Params};
use rand::Rng;
use std::collections::HashMap;

/// One probabilistic tuple `R_i(src, dst)` with `Pr = num / 2^bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbTuple {
    /// Source constant.
    pub src: u32,
    /// Destination constant.
    pub dst: u32,
    /// Numerator `s_t` of the dyadic probability.
    pub num: u32,
    /// Number of coin bits `b_t` (probability denominator `2^bits`).
    pub bits: u32,
}

impl ProbTuple {
    /// The tuple's probability as `f64`.
    pub fn probability(&self) -> f64 {
        self.num as f64 / 2f64.powi(self.bits as i32)
    }
}

/// A tuple-independent database for a `k`-step path query: `tuples[i]`
/// holds relation `R_{i+1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbDatabase {
    /// Size of the active domain (constants are `0..adom`).
    pub adom: u32,
    /// Per-relation tuple lists, in layer order `R₁, …, R_k`.
    pub tuples: Vec<Vec<ProbTuple>>,
}

/// Errors from the PQE pipeline.
#[derive(Debug)]
pub enum PqeError {
    /// A tuple is malformed (probability out of range, constants out of
    /// the domain, or zero coin bits).
    BadTuple(String),
    /// The query has no relations.
    EmptyQuery,
    /// The FPRAS failed.
    Fpras(FprasError),
}

impl std::fmt::Display for PqeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PqeError::BadTuple(msg) => write!(f, "bad tuple: {msg}"),
            PqeError::EmptyQuery => write!(f, "query must have at least one relation"),
            PqeError::Fpras(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PqeError {}

impl ProbDatabase {
    fn validate(&self) -> Result<(), PqeError> {
        if self.tuples.is_empty() {
            return Err(PqeError::EmptyQuery);
        }
        for rel in &self.tuples {
            for t in rel {
                if t.src >= self.adom || t.dst >= self.adom {
                    return Err(PqeError::BadTuple(format!("constant out of domain in {t:?}")));
                }
                if t.bits == 0 || t.bits > 20 {
                    return Err(PqeError::BadTuple(format!("bits must be in 1..=20 in {t:?}")));
                }
                if t.num > (1 << t.bits) {
                    return Err(PqeError::BadTuple(format!("num > 2^bits in {t:?}")));
                }
            }
        }
        Ok(())
    }

    /// Total number of coin bits `n = Σ b_t`.
    pub fn total_bits(&self) -> usize {
        self.tuples.iter().flatten().map(|t| t.bits as usize).sum()
    }
}

/// Carrier identity between tuple blocks: how much of the witness path
/// has been committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Carrier {
    /// No tuple committed yet (`x₀` still free).
    Start,
    /// Committed one tuple from each of `R₁..R_layer`, currently at
    /// `value` (i.e. `x_layer = value`).
    At {
        /// Layers completed (1-based).
        layer: u32,
        /// Current path endpoint.
        value: u32,
    },
}

/// Builds the world-word NFA for the database. Returns the automaton and
/// the word length `n` (its only non-empty slice).
pub fn pqe_to_nfa(db: &ProbDatabase) -> Result<(Nfa, usize), PqeError> {
    db.validate()?;
    let k = db.tuples.len() as u32;
    let n = db.total_bits();
    let mut b = NfaBuilder::new(Alphabet::binary());

    // Accepting sink: query satisfied; consumes any remaining bits.
    let sat = b.add_state();
    b.add_accepting(sat);
    b.add_transition(sat, 0, sat);
    b.add_transition(sat, 1, sat);

    // Carrier states alive at the current block boundary.
    let mut carriers: HashMap<Carrier, StateId> = HashMap::new();
    let start_state = b.add_state();
    b.set_initial(start_state);
    carriers.insert(Carrier::Start, start_state);

    for (layer0, rel) in db.tuples.iter().enumerate() {
        let layer = layer0 as u32 + 1; // this block belongs to R_layer
        for t in rel {
            let mut next_carriers: HashMap<Carrier, StateId> = HashMap::new();
            // Every surviving carrier continues across this block; usable
            // carriers additionally get the present/commit branch.
            let carrier_list: Vec<(Carrier, StateId)> =
                carriers.iter().map(|(&c, &s)| (c, s)).collect();
            for (c, entry) in carrier_list {
                let usable = match c {
                    Carrier::Start => layer == 1,
                    Carrier::At { layer: l, value } => l + 1 == layer && value == t.src,
                };
                // Skip-exit: the same carrier after the block.
                let skip_exit = *next_carriers.entry(c).or_insert_with(|| b.add_state());
                if usable {
                    // Commit-exit: path extended to t.dst — or SAT if this
                    // completes the query.
                    let commit_exit = if layer == k {
                        sat
                    } else {
                        let cc = Carrier::At { layer, value: t.dst };
                        *next_carriers.entry(cc).or_insert_with(|| b.add_state())
                    };
                    build_tuple_gadget(&mut b, entry, t, skip_exit, Some(commit_exit));
                } else {
                    build_tuple_gadget(&mut b, entry, t, skip_exit, None);
                }
            }
            carriers = next_carriers;
        }
    }
    // No carrier at the end is accepting — only SAT accepts.
    let nfa = b.build().map_err(|e| PqeError::BadTuple(e.to_string()))?;
    Ok((nfa, n))
}

/// Wires one tuple's `bits`-bit comparison gadget from `entry`.
///
/// All decoded outcomes route to `skip_exit` (tuple absent, or present
/// but unused); when `commit_exit` is given, present outcomes *also*
/// branch there (the nondeterministic "use this tuple" choice).
fn build_tuple_gadget(
    b: &mut NfaBuilder,
    entry: StateId,
    t: &ProbTuple,
    skip_exit: StateId,
    commit_exit: Option<StateId>,
) {
    let bits = t.bits as usize;
    let s = t.num as u64;

    // Track states: value-so-far equal to s's prefix, strictly less
    // (present whatever follows), or strictly greater (absent).
    // `None` entries are created lazily.
    let mut eq_state = Some(entry);
    let mut less_state: Option<StateId> = None;
    let mut greater_state: Option<StateId> = None;

    if s >= 1 << bits {
        // Probability 1: every block value is "present".
        less_state = eq_state.take();
    } else if s == 0 {
        // Probability 0: every block value is "absent".
        greater_state = eq_state.take();
    }

    for j in 0..bits {
        let last = j + 1 == bits;
        let s_bit = if s >= 1 << bits { 0 } else { (s >> (bits - 1 - j)) & 1 };

        // Helper targets for this step.
        let mut next_eq = None;
        let mut next_less = None;
        let mut next_greater = None;

        let wire = |b: &mut NfaBuilder,
                    from: StateId,
                    sym: u8,
                    track: Track,
                    next_eq: &mut Option<StateId>,
                    next_less: &mut Option<StateId>,
                    next_greater: &mut Option<StateId>| {
            if last {
                match track {
                    // Equal after all bits means value == s → absent.
                    Track::Eq | Track::Greater => b.add_transition(from, sym, skip_exit),
                    Track::Less => {
                        b.add_transition(from, sym, skip_exit);
                        if let Some(commit) = commit_exit {
                            b.add_transition(from, sym, commit);
                        }
                    }
                }
            } else {
                let slot = match track {
                    Track::Eq => next_eq,
                    Track::Less => next_less,
                    Track::Greater => next_greater,
                };
                let target = *slot.get_or_insert_with(|| b.add_state());
                b.add_transition(from, sym, target);
            }
        };

        if let Some(eq) = eq_state {
            for sym in 0..2u8 {
                let track = match (sym as u64).cmp(&s_bit) {
                    std::cmp::Ordering::Less => Track::Less,
                    std::cmp::Ordering::Equal => Track::Eq,
                    std::cmp::Ordering::Greater => Track::Greater,
                };
                wire(b, eq, sym, track, &mut next_eq, &mut next_less, &mut next_greater);
            }
        }
        if let Some(less) = less_state {
            for sym in 0..2u8 {
                wire(b, less, sym, Track::Less, &mut next_eq, &mut next_less, &mut next_greater);
            }
        }
        if let Some(greater) = greater_state {
            for sym in 0..2u8 {
                wire(
                    b,
                    greater,
                    sym,
                    Track::Greater,
                    &mut next_eq,
                    &mut next_less,
                    &mut next_greater,
                );
            }
        }
        eq_state = next_eq;
        less_state = next_less;
        greater_state = next_greater;
    }
}

#[derive(Clone, Copy)]
enum Track {
    Eq,
    Less,
    Greater,
}

/// Exact PQE by enumerating tuple subsets (`O(2^{#tuples})`) — ground
/// truth for tests and small experiments.
pub fn pqe_exact(db: &ProbDatabase) -> Result<f64, PqeError> {
    db.validate()?;
    let all: Vec<(usize, ProbTuple)> = db
        .tuples
        .iter()
        .enumerate()
        .flat_map(|(i, rel)| rel.iter().map(move |&t| (i, t)))
        .collect();
    assert!(all.len() <= 24, "exact PQE enumeration limited to 24 tuples");
    let mut total = 0.0;
    for mask in 0u64..(1 << all.len()) {
        let mut prob = 1.0;
        for (j, (_, t)) in all.iter().enumerate() {
            let p = t.probability();
            prob *= if mask & (1 << j) != 0 { p } else { 1.0 - p };
        }
        if prob > 0.0 && query_holds(db, &all, mask) {
            total += prob;
        }
    }
    Ok(total)
}

/// Evaluates the path query on one world (layered reachability).
fn query_holds(db: &ProbDatabase, all: &[(usize, ProbTuple)], mask: u64) -> bool {
    let mut reach: Vec<bool> = vec![true; db.adom as usize]; // x₀ free
    for layer in 0..db.tuples.len() {
        let mut next = vec![false; db.adom as usize];
        let mut any = false;
        for (j, (l, t)) in all.iter().enumerate() {
            if *l == layer && mask & (1 << j) != 0 && reach[t.src as usize] {
                next[t.dst as usize] = true;
                any = true;
            }
        }
        if !any {
            return false;
        }
        reach = next;
    }
    true
}

/// Result of an approximate PQE computation.
#[derive(Debug, Clone)]
pub struct PqeEstimate {
    /// Estimated probability that the query holds.
    pub probability: f64,
    /// The underlying #NFA estimate (count of satisfying worlds).
    pub world_count_log2: f64,
    /// Total coin bits (the #NFA instance's word length).
    pub coin_bits: usize,
    /// States of the reduced instance.
    pub nfa_states: usize,
}

/// Approximates PQE with the FPRAS: `(1±ε)` on the probability, with
/// confidence `1−δ`.
pub fn estimate_pqe<R: Rng + ?Sized>(
    db: &ProbDatabase,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Result<PqeEstimate, PqeError> {
    let (nfa, n) = pqe_to_nfa(db)?;
    let params = Params::practical(eps, delta, nfa.num_states(), n);
    let run = FprasRun::run(&nfa, n, &params, rng).map_err(PqeError::Fpras)?;
    let est = run.estimate();
    let probability = if est.is_zero() { 0.0 } else { 2f64.powf(est.log2() - n as f64) };
    Ok(PqeEstimate {
        probability,
        world_count_log2: est.log2(),
        coin_bits: n,
        nfa_states: nfa.num_states(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpras_automata::exact::count_exact;
    use rand::{rngs::SmallRng, SeedableRng};

    fn tuple(src: u32, dst: u32, num: u32, bits: u32) -> ProbTuple {
        ProbTuple { src, dst, num, bits }
    }

    /// One relation, one tuple with Pr = 1/2.
    #[test]
    fn single_tuple_half() {
        let db = ProbDatabase { adom: 2, tuples: vec![vec![tuple(0, 1, 1, 1)]] };
        assert_eq!(pqe_exact(&db).unwrap(), 0.5);
        let (nfa, n) = pqe_to_nfa(&db).unwrap();
        assert_eq!(n, 1);
        let worlds = count_exact(&nfa, n).unwrap().to_u64().unwrap();
        assert_eq!(worlds, 1); // exactly the world "0" (value 0 < 1)
    }

    /// Two independent parallel tuples in one relation:
    /// Pr[∃ path] = 1 − (1−p)(1−q).
    #[test]
    fn parallel_tuples() {
        let db = ProbDatabase { adom: 3, tuples: vec![vec![tuple(0, 1, 1, 2), tuple(2, 1, 3, 2)]] };
        let p = 0.25;
        let q = 0.75;
        let expect = 1.0 - (1.0 - p) * (1.0 - q);
        assert!((pqe_exact(&db).unwrap() - expect).abs() < 1e-12);
        // The NFA world count must match exactly: n = 4 bits.
        let (nfa, n) = pqe_to_nfa(&db).unwrap();
        let worlds = count_exact(&nfa, n).unwrap().to_u64().unwrap() as f64;
        assert!((worlds / 2f64.powi(n as i32) - expect).abs() < 1e-12);
    }

    /// Two-layer chain R(0,1), S(1,2): both must be present.
    #[test]
    fn serial_chain() {
        let db = ProbDatabase {
            adom: 3,
            tuples: vec![vec![tuple(0, 1, 1, 1)], vec![tuple(1, 2, 1, 1)]],
        };
        let expect = 0.25;
        assert!((pqe_exact(&db).unwrap() - expect).abs() < 1e-12);
        let (nfa, n) = pqe_to_nfa(&db).unwrap();
        let worlds = count_exact(&nfa, n).unwrap().to_u64().unwrap() as f64;
        assert!((worlds / 2f64.powi(n as i32) - expect).abs() < 1e-12);
    }

    /// Join values must match: S leaves from a node R never reaches.
    #[test]
    fn join_mismatch_gives_zero() {
        let db = ProbDatabase {
            adom: 4,
            tuples: vec![vec![tuple(0, 1, 1, 1)], vec![tuple(2, 3, 1, 1)]],
        };
        assert_eq!(pqe_exact(&db).unwrap(), 0.0);
        let (nfa, n) = pqe_to_nfa(&db).unwrap();
        assert!(count_exact(&nfa, n).unwrap().is_zero());
    }

    /// Randomized cross-check: NFA world count / 2^n == exact PQE on a
    /// batch of small random databases.
    #[test]
    fn nfa_reduction_matches_exact_pqe() {
        use rand::RngExt;
        let mut rng = SmallRng::seed_from_u64(77);
        for case in 0..30 {
            let adom = 3u32;
            let k = 1 + (case % 3) as usize;
            let tuples: Vec<Vec<ProbTuple>> = (0..k)
                .map(|_| {
                    (0..rng.random_range(1..3usize))
                        .map(|_| {
                            let bits = rng.random_range(1..3u32);
                            tuple(
                                rng.random_range(0..adom),
                                rng.random_range(0..adom),
                                rng.random_range(0..=(1 << bits)),
                                bits,
                            )
                        })
                        .collect()
                })
                .collect();
            let db = ProbDatabase { adom, tuples };
            let exact = pqe_exact(&db).unwrap();
            let (nfa, n) = pqe_to_nfa(&db).unwrap();
            let worlds = count_exact(&nfa, n).unwrap();
            let via_nfa = worlds.to_f64() / 2f64.powi(n as i32);
            assert!(
                (via_nfa - exact).abs() < 1e-9,
                "case {case}: exact {exact} vs nfa {via_nfa} ({db:?})"
            );
        }
    }

    /// End-to-end: FPRAS estimate within ε of exact PQE.
    #[test]
    fn fpras_estimate_close() {
        let db = ProbDatabase {
            adom: 4,
            tuples: vec![
                vec![tuple(0, 1, 1, 1), tuple(0, 2, 3, 2)],
                vec![tuple(1, 3, 1, 1), tuple(2, 3, 1, 2)],
            ],
        };
        let exact = pqe_exact(&db).unwrap();
        assert!(exact > 0.0);
        let mut rng = SmallRng::seed_from_u64(50);
        let est = estimate_pqe(&db, 0.3, 0.2, &mut rng).unwrap();
        let err = (est.probability - exact).abs() / exact;
        assert!(err < 0.3, "err {err}: exact {exact}, est {}", est.probability);
        assert_eq!(est.coin_bits, 6);
    }

    #[test]
    fn validation_errors() {
        let empty = ProbDatabase { adom: 2, tuples: vec![] };
        assert!(matches!(pqe_exact(&empty), Err(PqeError::EmptyQuery)));
        let bad = ProbDatabase { adom: 2, tuples: vec![vec![tuple(0, 5, 1, 1)]] };
        assert!(matches!(pqe_to_nfa(&bad), Err(PqeError::BadTuple(_))));
        let bad_num = ProbDatabase { adom: 2, tuples: vec![vec![tuple(0, 1, 9, 2)]] };
        assert!(matches!(pqe_to_nfa(&bad_num), Err(PqeError::BadTuple(_))));
    }

    #[test]
    fn probability_one_and_zero_tuples() {
        // Pr=1 tuple and Pr=0 tuple.
        let db = ProbDatabase {
            adom: 3,
            tuples: vec![vec![tuple(0, 1, 2, 1)], vec![tuple(1, 2, 0, 1)]],
        };
        assert_eq!(pqe_exact(&db).unwrap(), 0.0);
        let db2 = ProbDatabase {
            adom: 3,
            tuples: vec![vec![tuple(0, 1, 2, 1)], vec![tuple(1, 2, 2, 1)]],
        };
        assert_eq!(pqe_exact(&db2).unwrap(), 1.0);
        let (nfa, n) = pqe_to_nfa(&db2).unwrap();
        assert_eq!(count_exact(&nfa, n).unwrap().to_u64(), Some(4)); // all worlds
    }
}
