//! Applications of #NFA counting and sampling (paper §1).
//!
//! * [`rpq`] — counting and sampling answers to regular path queries on
//!   labeled graph databases;
//! * [`pqe`] — probabilistic query evaluation for self-join-free path
//!   queries over tuple-independent databases with dyadic probabilities,
//!   via the world-word reduction;
//! * [`homomorphism`] — probabilistic graph homomorphism for 1-way path
//!   queries, lowered onto the PQE reduction;
//! * [`leakage`] — quantitative information-flow estimation for
//!   automaton-modeled channels.

pub mod homomorphism;
pub mod leakage;
pub mod pqe;
pub mod rpq;

pub use homomorphism::{
    estimate_hom, hom_exact, hom_to_database, hom_to_nfa, HomError, HomEstimate, PathQuery,
    ProbEdge, ProbGraph,
};
pub use leakage::{estimate_leakage, LeakageEstimate};
pub use pqe::{
    estimate_pqe, pqe_exact, pqe_to_nfa, PqeError, PqeEstimate, ProbDatabase, ProbTuple,
};
pub use rpq::{count_answers, rpq_instance, sample_answer, Rpq, RpqCount, RpqError};
