//! Criterion benches for the main FPRAS (experiments E2/E3/E4's
//! micro-scale counterparts) and the head-to-head vs the ACJR-style
//! baseline (E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpras_baselines::{AcjrParams, AcjrRun};
use fpras_core::{FprasRun, Params};
use fpras_workloads::{random_nfa, RandomNfaConfig};
use rand::{rngs::SmallRng, SeedableRng};

fn bench_scaling_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_n");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        let nfa = random_nfa(
            &RandomNfaConfig { states: 8, density: 1.6, ..Default::default() },
            &mut SmallRng::seed_from_u64(1),
        );
        let params = Params::practical(0.3, 0.1, 8, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| FprasRun::run(&nfa, n, &params, &mut rng).unwrap().estimate());
        });
    }
    group.finish();
}

fn bench_scaling_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_m");
    group.sample_size(10);
    for m in [4usize, 8, 16] {
        let nfa = random_nfa(
            &RandomNfaConfig { states: m, density: 1.6, ..Default::default() },
            &mut SmallRng::seed_from_u64(3),
        );
        let params = Params::practical(0.3, 0.1, m, 8);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut rng = SmallRng::seed_from_u64(4);
            b.iter(|| FprasRun::run(&nfa, 8, &params, &mut rng).unwrap().estimate());
        });
    }
    group.finish();
}

fn bench_scaling_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_eps");
    group.sample_size(10);
    let nfa = random_nfa(
        &RandomNfaConfig { states: 8, density: 1.6, ..Default::default() },
        &mut SmallRng::seed_from_u64(5),
    );
    for eps in [0.5f64, 0.3, 0.15] {
        let params = Params::practical(eps, 0.1, 8, 8);
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            let mut rng = SmallRng::seed_from_u64(6);
            b.iter(|| FprasRun::run(&nfa, 8, &params, &mut rng).unwrap().estimate());
        });
    }
    group.finish();
}

fn bench_vs_acjr(c: &mut Criterion) {
    let mut group = c.benchmark_group("vs_acjr");
    group.sample_size(10);
    for m in [4usize, 12] {
        let nfa = random_nfa(
            &RandomNfaConfig { states: m, density: 1.6, ..Default::default() },
            &mut SmallRng::seed_from_u64(7),
        );
        let ours = Params::practical(0.3, 0.1, m, 8);
        group.bench_with_input(BenchmarkId::new("ours", m), &m, |b, _| {
            let mut rng = SmallRng::seed_from_u64(8);
            b.iter(|| FprasRun::run(&nfa, 8, &ours, &mut rng).unwrap().estimate());
        });
        let theirs = AcjrParams::practical(0.3, 0.1, m, 8);
        group.bench_with_input(BenchmarkId::new("acjr", m), &m, |b, _| {
            let mut rng = SmallRng::seed_from_u64(9);
            b.iter(|| AcjrRun::run(&nfa, 8, &theirs, &mut rng).unwrap().estimate());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_n, bench_scaling_m, bench_scaling_eps, bench_vs_acjr);
criterion_main!(benches);
