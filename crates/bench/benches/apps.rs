//! Criterion benches for the application pipelines (paper §1's
//! motivating workloads): RPQ counting and the PQE reduction+count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpras_apps::pqe::{estimate_pqe, pqe_to_nfa, ProbDatabase, ProbTuple};
use fpras_apps::rpq::{count_answers, Rpq};
use fpras_workloads::{random_graph, RandomGraphConfig};
use rand::{rngs::SmallRng, SeedableRng};

fn bench_rpq(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq");
    group.sample_size(10);
    for nodes in [8usize, 16] {
        let graph = random_graph(
            &RandomGraphConfig { nodes, labels: 2, avg_degree: 2.5 },
            &mut SmallRng::seed_from_u64(31),
        );
        let query = Rpq { source: 0, pattern: "(a|b)*a".into(), target: (nodes - 1) as u32 };
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            let mut rng = SmallRng::seed_from_u64(32);
            b.iter(|| count_answers(&graph, &query, 8, 0.3, 0.2, &mut rng).unwrap().total);
        });
    }
    group.finish();
}

fn pqe_db(tuples_per_rel: usize) -> ProbDatabase {
    let mut rng = SmallRng::seed_from_u64(33);
    use rand::RngExt;
    ProbDatabase {
        adom: 4,
        tuples: (0..2)
            .map(|_| {
                (0..tuples_per_rel)
                    .map(|_| ProbTuple {
                        src: rng.random_range(0..4),
                        dst: rng.random_range(0..4),
                        num: rng.random_range(1..4),
                        bits: 2,
                    })
                    .collect()
            })
            .collect(),
    }
}

fn bench_pqe(c: &mut Criterion) {
    let mut group = c.benchmark_group("pqe");
    group.sample_size(10);
    for tuples in [2usize, 4] {
        let db = pqe_db(tuples);
        group.bench_with_input(BenchmarkId::new("reduction", tuples), &tuples, |b, _| {
            b.iter(|| pqe_to_nfa(&db).unwrap().0.num_states());
        });
        group.bench_with_input(BenchmarkId::new("estimate", tuples), &tuples, |b, _| {
            let mut rng = SmallRng::seed_from_u64(34);
            b.iter(|| estimate_pqe(&db, 0.3, 0.2, &mut rng).unwrap().probability);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rpq, bench_pqe);
criterion_main!(benches);
