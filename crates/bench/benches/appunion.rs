//! Criterion benches for `AppUnion` (E10's timing counterpart) and the
//! almost-uniform generator (E7's timing counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpras_automata::{StateSet, Word};
use fpras_core::sample_set::{SampleEntry, SampleSet};
use fpras_core::{
    app_union, FprasRun, Params, RunStats, UniformGenerator, UnionScratch, UnionSetInput,
};
use fpras_numeric::ExtFloat;
use fpras_workloads::families;
use rand::{rngs::SmallRng, RngExt, SeedableRng};

fn synthetic_sets(k: usize, samples: usize, seed: u64) -> Vec<(SampleSet, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..k)
        .map(|i| {
            let mut s = SampleSet::empty();
            for _ in 0..samples {
                let w = rng.random_range(0..4096u64);
                s.push(SampleEntry {
                    word: Word::from_index(w, 12, 2),
                    reach: StateSet::from_iter(k, [i, (i + w as usize) % k]),
                });
            }
            (s, 4096)
        })
        .collect()
}

fn bench_appunion(c: &mut Criterion) {
    let mut group = c.benchmark_group("appunion");
    for eps in [0.3f64, 0.1] {
        let sets = synthetic_sets(8, 4000, 10);
        let params = Params::practical(0.2, 0.05, 8, 8);
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            let mut rng = SmallRng::seed_from_u64(11);
            let mut scratch = UnionScratch::new();
            b.iter(|| {
                let inputs: Vec<UnionSetInput<'_>> = sets
                    .iter()
                    .enumerate()
                    .map(|(i, (s, sz))| UnionSetInput {
                        samples: s,
                        size_est: ExtFloat::from_u64(*sz),
                        state: i as u32,
                    })
                    .collect();
                let mut stats = RunStats::default();
                app_union(&params, eps, 0.05, 0.0, &inputs, 8, &mut rng, &mut scratch, &mut stats)
                    .value
            });
        });
    }
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(20);
    let nfa = families::contains_substring(&[1, 1]);
    for n in [8usize, 16] {
        let params = Params::practical(0.3, 0.1, nfa.num_states(), n);
        let mut rng = SmallRng::seed_from_u64(12);
        let run = FprasRun::run(&nfa, n, &params, &mut rng).unwrap();
        let mut generator = UniformGenerator::new(run);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| generator.generate(&mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_appunion, bench_generator);
criterion_main!(benches);
