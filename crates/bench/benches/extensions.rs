//! Criterion benches for the extension components: BDD compilation and
//! model counting (E13's timing counterpart), path-importance sampling
//! (E12), and the level-parallel runner vs the serial one (E14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpras_baselines::path_importance_sampling;
use fpras_bdd::{compile_slice, model_count, sample_word};
use fpras_core::{run_parallel, FprasRun, Params};
use fpras_workloads::{ambiguous, families};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn bench_bdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd");
    group.sample_size(20);
    // Compile + count on a structured language at growing n.
    let nfa = families::contains_substring(&[1, 0, 1]);
    for n in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("compile_count_101", n), &n, |b, &n| {
            b.iter(|| {
                let compiled = compile_slice(black_box(&nfa), n).unwrap();
                model_count(&compiled.bdd, compiled.root)
            });
        });
    }
    // Where the BDD shines: fixed-position language with huge DFA.
    let fixed = families::kth_symbol_from_end(16);
    group.bench_function("compile_count_kth16", |b| {
        b.iter(|| {
            let compiled = compile_slice(black_box(&fixed), 32).unwrap();
            model_count(&compiled.bdd, compiled.root)
        });
    });
    // Uniform word sampling from a compiled slice.
    let compiled = compile_slice(&nfa, 24).unwrap();
    group.bench_function("sample_word_101_n24", |b| {
        let mut rng = SmallRng::seed_from_u64(30);
        b.iter(|| sample_word(black_box(&compiled), &mut rng).unwrap());
    });
    group.finish();
}

fn bench_path_is(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_is");
    group.sample_size(20);
    let unambiguous = families::ones_mod_k(4);
    group.bench_function("unambiguous_1k_trials", |b| {
        let mut rng = SmallRng::seed_from_u64(31);
        b.iter(|| path_importance_sampling(black_box(&unambiguous), 16, 1000, &mut rng).unwrap());
    });
    let ambiguous = ambiguous::redundant_copies(8);
    group.bench_function("ambiguous_1k_trials", |b| {
        let mut rng = SmallRng::seed_from_u64(32);
        b.iter(|| path_importance_sampling(black_box(&ambiguous), 16, 1000, &mut rng).unwrap());
    });
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_runner");
    group.sample_size(10);
    let nfa = families::halves_differ(7);
    let n = 14;
    let params = Params::practical(0.3, 0.1, nfa.num_states(), n);
    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(33);
            FprasRun::run(black_box(&nfa), n, &params, &mut rng).unwrap().estimate()
        });
    });
    for threads in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| run_parallel(black_box(&nfa), n, &params, 33, t).unwrap().estimate());
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_reduce");
    group.sample_size(20);
    for copies in [4usize, 16] {
        let nfa = ambiguous::redundant_copies(copies);
        group.bench_with_input(BenchmarkId::new("redundant", copies), &copies, |b, _| {
            b.iter(|| fpras_automata::simulation::reduce(black_box(&nfa)).num_states());
        });
    }
    group.finish();
}

fn bench_spanner(c: &mut Criterion) {
    use fpras_automata::{Alphabet, Word};
    use fpras_spanner::{compile_spanner, count_answers_exact, VSetBuilder};
    let mut group = c.benchmark_group("spanner");
    group.sample_size(20);
    // .* ⊢x 1+ x⊣ .* — single-variable run extractor.
    let vset = {
        let mut b = VSetBuilder::new(Alphabet::binary(), 1);
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.set_initial(s[0]);
        b.add_accepting(s[3]);
        for sym in [0, 1] {
            b.read(s[0], sym, s[0]);
            b.read(s[3], sym, s[3]);
        }
        b.open(s[0], 0, s[1]);
        b.read(s[1], 1, s[2]);
        b.read(s[2], 1, s[2]);
        b.close(s[2], 0, s[3]);
        b.build().unwrap()
    };
    for len in [16usize, 32] {
        let doc = Word::from_symbols((0..len).map(|i| u8::from(i % 3 != 0)).collect::<Vec<_>>());
        group.bench_with_input(BenchmarkId::new("compile", len), &len, |b, _| {
            b.iter(|| compile_spanner(black_box(&vset), black_box(&doc)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("count_exact", len), &len, |b, _| {
            b.iter(|| count_answers_exact(black_box(&vset), black_box(&doc)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bdd,
    bench_path_is,
    bench_parallel,
    bench_simulation,
    bench_spanner
);
criterion_main!(benches);
