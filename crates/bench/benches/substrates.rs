//! Criterion benches for the substrates: bitset stepping, extended-range
//! floats, big integers, exact counting and the baselines (E11's timing
//! counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpras_automata::exact::count_exact;
use fpras_automata::{StateSet, StepMasks, Word};
use fpras_baselines::naive_mc;
use fpras_numeric::{BigUint, ExtFloat};
use fpras_workloads::{families, random_nfa, RandomNfaConfig};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn bench_stateset(c: &mut Criterion) {
    let mut group = c.benchmark_group("stateset");
    for m in [64usize, 512] {
        let a = StateSet::from_iter(m, (0..m).step_by(3));
        let b = StateSet::from_iter(m, (0..m).step_by(7));
        group.bench_with_input(BenchmarkId::new("intersects", m), &m, |bench, _| {
            bench.iter(|| black_box(&a).intersects(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("union_with", m), &m, |bench, _| {
            bench.iter(|| {
                let mut x = a.clone();
                x.union_with(black_box(&b));
                x
            });
        });
    }
    group.finish();
}

fn bench_masks_reach(c: &mut Criterion) {
    let mut group = c.benchmark_group("masks_reach");
    for m in [8usize, 32] {
        let nfa = random_nfa(
            &RandomNfaConfig { states: m, density: 2.0, ..Default::default() },
            &mut SmallRng::seed_from_u64(20),
        );
        let masks = StepMasks::new(&nfa);
        let word = Word::from_index(0xA5A5, 16, 2);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| masks.reach(black_box(&word)));
        });
    }
    group.finish();
}

fn bench_numeric(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric");
    let a = ExtFloat::pow2(5000).scale(1.7);
    let b = ExtFloat::pow2(4999).scale(1.3);
    group.bench_function("extfloat_mul", |bench| {
        bench.iter(|| black_box(a) * black_box(b));
    });
    group.bench_function("extfloat_add", |bench| {
        bench.iter(|| black_box(a) + black_box(b));
    });
    let x = BigUint::pow(3, 500);
    let y = BigUint::pow(7, 300);
    group.bench_function("biguint_mul", |bench| {
        bench.iter(|| black_box(&x) * black_box(&y));
    });
    group.bench_function("biguint_add", |bench| {
        bench.iter(|| black_box(&x) + black_box(&y));
    });
    group.finish();
}

fn bench_exact_and_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_counters");
    group.sample_size(10);
    // Exact determinization DP on a benign instance…
    let benign = families::contains_substring(&[1, 0, 1]);
    group.bench_function("exact_dp_benign", |b| {
        b.iter(|| count_exact(black_box(&benign), 16).unwrap());
    });
    // …and on a determinization-hostile one (exponential width).
    let hostile = families::kth_symbol_from_end(12);
    group.bench_function("exact_dp_hostile", |b| {
        b.iter(|| count_exact(black_box(&hostile), 16).unwrap());
    });
    group.bench_function("naive_mc_20k", |b| {
        let mut rng = SmallRng::seed_from_u64(21);
        b.iter(|| naive_mc(black_box(&benign), 16, 20_000, &mut rng).estimate);
    });
    group.finish();
}

criterion_group!(benches, bench_stateset, bench_masks_reach, bench_numeric, bench_exact_and_naive);
criterion_main!(benches);
