//! Criterion benches for the interned-frontier hot-path kernels (§2.5):
//! intern lookup, the `StepMasks` flat-arena step kernels, the
//! `AppUnion` prefix-mask build shape, and the full trial loop with a
//! reused [`UnionScratch`]. These are the pieces the count/sample/share
//! passes execute millions of times per run; `cargo bench --bench
//! kernels` tracks their per-call cost so a regression to per-key
//! allocation shows up as a step change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpras_automata::{StateSet, StepMasks, Word};
use fpras_core::sample_set::{SampleEntry, SampleSet};
use fpras_core::{app_union, FrontierInterner, Params, RunStats, UnionScratch, UnionSetInput};
use fpras_numeric::ExtFloat;
use fpras_workloads::{random_nfa, RandomNfaConfig};
use rand::{rngs::SmallRng, RngExt, SeedableRng};

/// Distinct pseudo-random frontiers over `universe` states.
fn frontiers(universe: usize, count: usize, seed: u64) -> Vec<StateSet> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            StateSet::from_iter(universe, (0..universe).filter(|_| rng.random_range(0..4u8) == 0))
        })
        .collect()
}

/// Intern-hit lookup: the per-key cost every memo probe, plan build,
/// and share pre-pass pays after a frontier's first appearance.
fn bench_intern(c: &mut Criterion) {
    let mut group = c.benchmark_group("intern_lookup");
    for universe in [48usize, 192] {
        let sets = frontiers(universe, 64, 21);
        let interner = FrontierInterner::new(universe);
        for s in &sets {
            interner.intern(3, s); // warm: every bench probe is a hit
        }
        group.bench_with_input(BenchmarkId::from_parameter(universe), &universe, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let key = interner.intern(3, &sets[i % sets.len()]);
                i += 1;
                key.rng_tag()
            });
        });
    }
    group.finish();
}

/// Forward/backward step on the flat predecessor-mask arena — the
/// inner kernel of `LevelPlan::build` and the sampler's branch loop.
fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_into");
    for states in [48usize, 192] {
        let nfa = random_nfa(
            &RandomNfaConfig { states, alphabet: 2, density: 2.5, accepting: 2 },
            &mut SmallRng::seed_from_u64(7),
        );
        let masks = StepMasks::new(&nfa);
        let from = StateSet::from_iter(states, (0..states).step_by(3));
        let mut out = StateSet::empty(states);
        group.bench_with_input(BenchmarkId::new("forward", states), &states, |b, _| {
            b.iter(|| {
                masks.step_into(&from, 1, &mut out);
                out.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("backward", states), &states, |b, _| {
            b.iter(|| {
                masks.step_back_into(&from, 1, &mut out);
                out.len()
            });
        });
    }
    group.finish();
}

/// The `AppUnion` prefix-mask build shape: one flat `k × stride` word
/// buffer where block `i` is the union of sets `0..i` — block `i`
/// copies block `i − 1` and sets one bit (no per-set allocation).
fn bench_prefix_masks(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_mask_build");
    for (k, universe) in [(8usize, 64usize), (32, 256)] {
        let stride = universe.div_ceil(64);
        let states: Vec<usize> = (0..k).map(|i| (i * 37) % universe).collect();
        let mut prefix: Vec<u64> = Vec::new();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k={k}/m={universe}")),
            &k,
            |b, _| {
                b.iter(|| {
                    prefix.clear();
                    prefix.resize(k * stride, 0);
                    for i in 1..k {
                        let (done, rest) = prefix.split_at_mut(i * stride);
                        rest[..stride].copy_from_slice(&done[(i - 1) * stride..]);
                        let p = states[i - 1];
                        rest[p / 64] |= 1u64 << (p % 64);
                    }
                    prefix[k * stride - 1]
                });
            },
        );
    }
    group.finish();
}

/// The full `AppUnion` trial loop with a reused scratch — the dominant
/// cost of every count pass and sampler memo miss.
fn bench_appunion_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("appunion_trial_loop");
    let k = 8usize;
    let mut rng = SmallRng::seed_from_u64(31);
    let sets: Vec<(SampleSet, u64)> = (0..k)
        .map(|i| {
            let mut s = SampleSet::empty();
            for _ in 0..2000 {
                let w = rng.random_range(0..4096u64);
                s.push(SampleEntry {
                    word: Word::from_index(w, 12, 2),
                    reach: StateSet::from_iter(k, [i, (i + w as usize) % k]),
                });
            }
            (s, 4096)
        })
        .collect();
    let inputs: Vec<UnionSetInput<'_>> = sets
        .iter()
        .enumerate()
        .map(|(i, (s, sz))| UnionSetInput {
            samples: s,
            size_est: ExtFloat::from_u64(*sz),
            state: i as u32,
        })
        .collect();
    let params = Params::practical(0.2, 0.05, k, 8);
    for eps in [0.3f64, 0.1] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            let mut rng = SmallRng::seed_from_u64(11);
            let mut scratch = UnionScratch::new();
            b.iter(|| {
                let mut stats = RunStats::default();
                app_union(&params, eps, 0.05, 0.0, &inputs, k, &mut rng, &mut scratch, &mut stats)
                    .value
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intern, bench_step, bench_prefix_masks, bench_appunion_trials);
criterion_main!(benches);
