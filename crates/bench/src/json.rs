//! Machine-readable benchmark output.
//!
//! `experiments --json [PATH]` writes a `BENCH_counter.json` so later
//! PRs have a perf trajectory to compare against: one record per
//! `(instance, method, threads)` cell with wall time and the estimate.
//! The FPRAS rows include `fpras(unbatched)` and `fpras(unshared)`
//! controls — same seed, bit-identical estimate, batched union
//! estimation (D8) resp. sample-pass frontier sharing (D9) disabled —
//! so both sharing layers' savings (`ops`, `cells_deduped`,
//! `preestimate_hits`, `memo_entries_shared`) are recorded in every
//! trajectory snapshot. The encoder is hand-rolled (the workspace
//! vendors no serde) and the schema is deliberately flat — downstream
//! tooling should need nothing beyond a JSON array of objects.

use fpras_baselines::{run_counter, CounterKind};
use fpras_workloads::{families, random_nfa, RandomNfaConfig};
use rand::{rngs::SmallRng, SeedableRng};

/// Default output path for [`write_counter_json`].
pub const DEFAULT_JSON_PATH: &str = "BENCH_counter.json";

/// One `(instance, method, threads)` measurement.
#[derive(Debug, Clone)]
pub struct CounterMeasurement {
    /// Instance label (`family/n=…`).
    pub instance: String,
    /// Counter label from [`CounterKind::label`].
    pub method: String,
    /// Engine worker threads (0 = serial policy; exact methods report 0).
    pub threads: usize,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// The (estimated or exact) count as `f64`.
    pub estimate: f64,
    /// `log2` of the estimate (stable even when the count overflows
    /// `f64`; negative infinity for zero).
    pub estimate_log2: f64,
    /// Membership/word operations attributed to the run.
    pub ops: u64,
    /// `(cell, symbol)` pairs deduplicated by batched union estimation.
    pub cells_deduped: u64,
    /// Sampler union lookups answered by pre-estimated shared entries
    /// (D9; zero for unshared controls and exact methods).
    pub preestimate_hits: u64,
    /// Memo base entries shared (not cloned) across copy-on-write
    /// sample-pass snapshots (zero for serial and exact rows).
    pub memo_entries_shared: u64,
    /// Chunks the work-stealing executor moved between workers (D10;
    /// zero for serial/exact rows — scheduling evidence, varies run to
    /// run by design).
    pub pool_steals: u64,
    /// Distinct frontiers hash-consed by the run's interner (§2.5;
    /// zero for exact and baseline rows).
    pub distinct_frontiers: u64,
    /// Frontier-key constructions answered by an existing interned
    /// entry — the allocations the pre-interner hot path paid per key
    /// (zero for exact and baseline rows).
    pub intern_hits: u64,
    /// Wall time attributed to the engine's per-level phases
    /// (plan/count/share/sample/merge — D15; all-zero for exact and
    /// baseline rows). Emitted as five flat `phase_*_s` columns.
    pub phase: fpras_core::PhaseWall,
    /// Parallel efficiency `wall₁ / (wallₜ · t)` against the same
    /// instance's `fpras(ours)` `threads = 1` row (1.0 = ideal linear
    /// scaling; `None` for serial, control, and exact rows). Interpret
    /// together with `host_cpus`: a 1-CPU recorder is physically capped
    /// at `1/t`.
    pub parallel_efficiency: Option<f64>,
    /// Hardware threads available on the recording host
    /// (`std::thread::available_parallelism`) — the honest ceiling for
    /// the efficiency column.
    pub host_cpus: usize,
    /// Queries answered by this row (1 for plain single-run rows; the
    /// trace length for query-trace rows).
    pub queries_served: u64,
    /// DP levels answered from an existing session checkpoint instead
    /// of being rebuilt (query-trace session rows only; zero for
    /// single-run rows and the fresh-per-query control).
    pub levels_reused: u64,
    /// Amortized microseconds per query (`None` for single-run rows —
    /// the per-query framing only means something over a trace).
    pub us_per_query: Option<f64>,
    /// Median per-query latency in microseconds (load-harness rows
    /// only; `None` elsewhere). Unlike `us_per_query` this is a real
    /// per-query distribution statistic, not an amortized mean.
    pub p50_us: Option<f64>,
    /// 99th-percentile per-query latency in microseconds (load-harness
    /// rows only). The tail the mean hides: cold builds and extensions
    /// land here, reuse hits land at p50.
    pub p99_us: Option<f64>,
    /// Queries and opens turned away or aborted by the admission
    /// controller (level-quota denials + per-query budget aborts; zero
    /// for unquota'd rows).
    pub quota_rejections: u64,
    /// `levels_reused / (levels_built + levels_reused)` over the row's
    /// whole trace (`None` for single-run rows).
    pub reuse_rate: Option<f64>,
}

/// Hardware threads on the recording host.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One measured row (efficiency is filled in per instance afterwards).
fn measure(
    instance: &str,
    kind: &CounterKind,
    nfa: &fpras_automata::Nfa,
    n: usize,
    eps: f64,
    seed: u64,
) -> CounterMeasurement {
    let threads = match kind {
        CounterKind::Fpras { threads, .. } | CounterKind::RobpFpras { threads, .. } => *threads,
        _ => 0,
    };
    let r = run_counter(kind, nfa, n, eps, 0.1, seed).expect("counter run");
    CounterMeasurement {
        instance: instance.to_string(),
        method: kind.label().to_string(),
        threads,
        wall_seconds: r.wall.as_secs_f64(),
        estimate: r.estimate.to_f64(),
        estimate_log2: r.estimate.log2(),
        ops: r.ops,
        cells_deduped: r.cells_deduped,
        preestimate_hits: r.preestimate_hits,
        memo_entries_shared: r.memo_entries_shared,
        pool_steals: r.pool_steals,
        distinct_frontiers: r.distinct_frontiers,
        intern_hits: r.intern_hits,
        phase: r.phase,
        parallel_efficiency: None,
        host_cpus: host_cpus(),
        queries_served: 1,
        levels_reused: 0,
        us_per_query: None,
        p50_us: None,
        p99_us: None,
        quota_rejections: 0,
        reuse_rate: None,
    }
}

/// The query-trace bench family: one mixed-length stream over two
/// automata, served once through a [`ServiceRegistry`] (one session per
/// automaton, levels reused across related lengths) and once by the
/// fresh-run-per-query control (what a stateless deployment pays).
/// Both modes answer every query with the **same** Deterministic seed,
/// so their per-query estimates are bit-identical — the session rows
/// differ only in `wall`/`ops`/`levels_reused`, which is exactly the
/// amortization evidence. Single-threaded on purpose: the recording
/// host has 1 CPU, so the honest claim is level reuse, not thread
/// scaling.
fn service_trace_rows(quick: bool, seed: u64) -> Vec<CounterMeasurement> {
    use fpras_core::service::{ServiceRegistry, SessionPolicy};
    use fpras_core::{run_parallel, Params};
    use fpras_workloads::{query_trace, QueryTraceConfig};
    use std::time::Instant;

    let (queries, max_len) = if quick { (16, 10) } else { (40, 14) };
    let automata = [families::contains_substring(&[1, 1]), families::ones_mod_k(4)];
    let config = QueryTraceConfig {
        queries,
        automata: automata.len(),
        min_len: 4,
        max_len,
        repeat_bias: 0.6,
        hot_automaton_bias: 0.0,
    };
    let trace = query_trace(&config, &mut SmallRng::seed_from_u64(seed ^ 0x7ACE));
    let params: Vec<Params> = automata
        .iter()
        .map(|nfa| Params::for_session(0.25, 0.1, nfa.num_states(), max_len))
        .collect();
    let policy = SessionPolicy::Deterministic { seed, threads: 1 };
    let instance = format!("query-trace/q={queries}");

    // Session mode: one registry, one session per automaton. Keys are
    // precomputed so the serving loop never re-hashes an automaton.
    let keys: Vec<_> = automata
        .iter()
        .zip(&params)
        .map(|(nfa, p)| fpras_core::service::SessionKey::new(nfa, p, &policy))
        .collect();
    let mut registry = ServiceRegistry::new(automata.len());
    let start = Instant::now();
    let mut last = fpras_numeric::ExtFloat::ZERO;
    for q in &trace {
        let session = registry
            .session_with_key(
                keys[q.automaton].clone(),
                &automata[q.automaton],
                &params[q.automaton],
                &policy,
            )
            .expect("session params are valid by construction");
        last = session.estimate(q.len).expect("trace runs without a budget");
    }
    let session_wall = start.elapsed();
    let totals = registry.session_totals();
    let mut session_ops = 0;
    let mut session_phase = fpras_core::PhaseWall::default();
    for (i, nfa) in automata.iter().enumerate() {
        let stats = registry
            .session(nfa, &params[i], &policy)
            .expect("session already cached")
            .run_stats()
            .clone();
        session_ops += stats.membership_ops;
        session_phase.merge(&stats.phase);
    }
    let session_row = CounterMeasurement {
        instance: instance.clone(),
        method: "session(trace)".into(),
        threads: 1,
        wall_seconds: session_wall.as_secs_f64(),
        estimate: last.to_f64(),
        estimate_log2: last.log2(),
        ops: session_ops,
        cells_deduped: 0,
        preestimate_hits: 0,
        memo_entries_shared: 0,
        pool_steals: 0,
        distinct_frontiers: 0,
        intern_hits: 0,
        phase: session_phase,
        parallel_efficiency: None,
        host_cpus: host_cpus(),
        queries_served: totals.queries_served,
        levels_reused: totals.levels_reused,
        us_per_query: Some(session_wall.as_secs_f64() * 1e6 / queries as f64),
        p50_us: None,
        p99_us: None,
        quota_rejections: 0,
        reuse_rate: Some(totals.reuse_rate()),
    };

    // Control: a fresh engine run per query, same seed and params — the
    // estimates match the session rows bit for bit (D11); only the work
    // differs.
    let start = Instant::now();
    let mut control_ops = 0;
    let mut control_phase = fpras_core::PhaseWall::default();
    let mut last_control = fpras_numeric::ExtFloat::ZERO;
    for q in &trace {
        let run = run_parallel(&automata[q.automaton], q.len, &params[q.automaton], seed, 1)
            .expect("control run");
        control_ops += run.stats().membership_ops;
        control_phase.merge(&run.stats().phase);
        last_control = run.estimate();
    }
    let control_wall = start.elapsed();
    assert_eq!(
        last.to_f64(),
        last_control.to_f64(),
        "session and fresh-per-query answers must be bit-identical (D11)"
    );
    let control_row = CounterMeasurement {
        instance,
        method: "fresh-per-query".into(),
        threads: 1,
        wall_seconds: control_wall.as_secs_f64(),
        estimate: last_control.to_f64(),
        estimate_log2: last_control.log2(),
        ops: control_ops,
        cells_deduped: 0,
        preestimate_hits: 0,
        memo_entries_shared: 0,
        pool_steals: 0,
        distinct_frontiers: 0,
        intern_hits: 0,
        phase: control_phase,
        parallel_efficiency: None,
        host_cpus: host_cpus(),
        queries_served: queries as u64,
        levels_reused: 0,
        us_per_query: Some(control_wall.as_secs_f64() * 1e6 / queries as f64),
        p50_us: None,
        p99_us: None,
        quota_rejections: 0,
        reuse_rate: Some(0.0),
    };
    vec![session_row, control_row]
}

/// Fills `parallel_efficiency` for every `fpras(ours)` row with
/// `threads ≥ 1`, relative to the same instance's `threads = 1` row:
/// `wall₁ / (wallₜ · t)`.
fn fill_parallel_efficiency(rows: &mut [CounterMeasurement]) {
    let baselines: Vec<(String, f64)> = rows
        .iter()
        .filter(|m| m.method == "fpras(ours)" && m.threads == 1)
        .map(|m| (m.instance.clone(), m.wall_seconds))
        .collect();
    for m in rows.iter_mut() {
        if m.method != "fpras(ours)" || m.threads < 1 {
            continue;
        }
        if let Some((_, wall1)) = baselines.iter().find(|(i, _)| *i == m.instance) {
            if m.wall_seconds > 0.0 {
                m.parallel_efficiency = Some(wall1 / (m.wall_seconds * m.threads as f64));
            }
        }
    }
}

/// Runs the counter matrix the JSON report records: three small
/// instance families × the FPRAS engine at several thread counts (plus
/// unbatched/unshared controls) × the exact DP as ground truth, and two
/// **large skewed instances** where the sample pass is hot — a wide
/// dense random NFA (the work-stealing pool engages on every level) and
/// a deeply unrolled automaton (3 live cells per level: the
/// sequential-fallback cutoff keeps thread overhead at zero) — at
/// threads 1/2/4/8 with a `parallel_efficiency` column. `quick` shrinks
/// instance sizes for smoke passes.
pub fn counter_matrix(quick: bool, seed: u64) -> Vec<CounterMeasurement> {
    let n = if quick { 10 } else { 14 };
    let instances = [
        ("contains-11", families::contains_substring(&[1, 1])),
        ("ones-mod-4", families::ones_mod_k(4)),
        ("div-by-5", families::divisible_by(5)),
    ];
    // threads = 0 is the Serial policy; ≥ 1 the Deterministic policy.
    // The `batch = false` rows are the unbatched controls (bit-identical
    // estimates, strictly more ops, zero dedup) and the `share = false`
    // rows the unshared controls (bit-identical estimates, equal-or-more
    // estimation work, zero pre-estimate hits — the pre-pass pays off on
    // levels where several cells miss the same frontier).
    let fpras_settings = [
        (0usize, true, true),
        (1, true, true),
        (2, true, true),
        (4, true, true),
        (8, true, true),
        (0, false, true),
        (4, false, true),
        (0, true, false),
        (4, true, false),
    ];
    let mut out = Vec::new();
    for (name, nfa) in &instances {
        let instance = format!("{name}/n={n}");
        for &(threads, batch, share) in &fpras_settings {
            let kind = CounterKind::Fpras { threads, batch, share };
            out.push(measure(&instance, &kind, nfa, n, 0.25, seed));
        }
        out.push(measure(&instance, &CounterKind::ExactDp, nfa, n, 0.25, seed));
    }

    // nROBP substrate rows (D14): two of the small instances re-encoded
    // as read-once branching programs (`Robp::from_nfa`, which preserves
    // the language slice — so the base instance's `exact-dp` row above
    // is their ground truth too) and counted by the same engine over the
    // `RobpSubstrate`. Statistically comparable to the fpras rows, not
    // bit-identical: the program's node universe differs from the NFA's
    // state universe, so the frontier-keyed streams differ.
    let robp_settings = [(0usize, true), (4, true), (0, false)];
    for (name, nfa) in instances.iter().take(2) {
        let instance = format!("robp-{name}/n={n}");
        for &(threads, batch) in &robp_settings {
            let kind = CounterKind::RobpFpras { threads, batch };
            out.push(measure(&instance, &kind, nfa, n, 0.25, seed));
        }
    }

    // Large skewed instances (D10): the n = 14 fixtures above finish in
    // ~0.1 s — spawn overhead and skew are invisible there. These are
    // sized so the per-level passes carry real work.
    let (dense_m, dense_n, unroll_n) = if quick { (24, 12, 20) } else { (48, 20, 64) };
    let dense = random_nfa(
        &RandomNfaConfig { states: dense_m, alphabet: 2, density: 2.5, accepting: 2 },
        &mut SmallRng::seed_from_u64(seed ^ 0xD10),
    );
    let large: [(String, fpras_automata::Nfa, usize, f64); 2] = [
        (format!("dense-random-{dense_m}/n={dense_n}"), dense, dense_n, 0.4),
        (
            format!("unrolled-contains-11/n={unroll_n}"),
            families::unrolled(&families::contains_substring(&[1, 1]), unroll_n),
            unroll_n,
            0.3,
        ),
    ];
    for (instance, nfa, n, eps) in &large {
        // One discarded warmup run per instance: the first run on a
        // fresh working-set shape pays allocator/cache warmup that
        // would otherwise inflate every later row's efficiency against
        // the t = 1 baseline.
        let warmup = CounterKind::Fpras { threads: 1, batch: true, share: true };
        let _ = run_counter(&warmup, nfa, *n, *eps, 0.1, seed);
        for threads in [1usize, 2, 4, 8] {
            let kind = CounterKind::Fpras { threads, batch: true, share: true };
            out.push(measure(instance, &kind, nfa, *n, *eps, seed));
        }
        out.push(measure(instance, &CounterKind::ExactDp, nfa, *n, *eps, seed));
    }

    fill_parallel_efficiency(&mut out);

    // Query-trace family (service layer): amortized per-query cost with
    // level reuse vs. the fresh-run-per-query control.
    out.extend(service_trace_rows(quick, seed));
    // Load harness (serving front-end): p50/p99 latency, reuse rate,
    // and quota shedding over a large mixed-tenant trace.
    out.extend(crate::load::load_harness_rows(quick, seed));
    out
}

/// Renders the measurements as a pretty-printed JSON array.
pub fn to_json(measurements: &[CounterMeasurement]) -> String {
    let mut s = String::from("[\n");
    for (i, m) in measurements.iter().enumerate() {
        s.push_str("  {");
        s.push_str(&format!("\"instance\": {}, ", quote(&m.instance)));
        s.push_str(&format!("\"method\": {}, ", quote(&m.method)));
        s.push_str(&format!("\"threads\": {}, ", m.threads));
        s.push_str(&format!("\"wall_seconds\": {}, ", number(m.wall_seconds)));
        s.push_str(&format!("\"estimate\": {}, ", number(m.estimate)));
        s.push_str(&format!("\"estimate_log2\": {}, ", number(m.estimate_log2)));
        s.push_str(&format!("\"ops\": {}, ", m.ops));
        s.push_str(&format!("\"cells_deduped\": {}, ", m.cells_deduped));
        s.push_str(&format!("\"preestimate_hits\": {}, ", m.preestimate_hits));
        s.push_str(&format!("\"memo_entries_shared\": {}, ", m.memo_entries_shared));
        s.push_str(&format!("\"pool_steals\": {}, ", m.pool_steals));
        s.push_str(&format!("\"distinct_frontiers\": {}, ", m.distinct_frontiers));
        s.push_str(&format!("\"intern_hits\": {}, ", m.intern_hits));
        s.push_str(&format!("\"phase_plan_s\": {}, ", number(m.phase.plan.as_secs_f64())));
        s.push_str(&format!("\"phase_count_s\": {}, ", number(m.phase.count.as_secs_f64())));
        s.push_str(&format!("\"phase_share_s\": {}, ", number(m.phase.share.as_secs_f64())));
        s.push_str(&format!("\"phase_sample_s\": {}, ", number(m.phase.sample.as_secs_f64())));
        s.push_str(&format!("\"phase_merge_s\": {}, ", number(m.phase.merge.as_secs_f64())));
        s.push_str(&format!(
            "\"parallel_efficiency\": {}, ",
            m.parallel_efficiency.map_or("null".to_string(), number)
        ));
        s.push_str(&format!("\"host_cpus\": {}, ", m.host_cpus));
        s.push_str(&format!("\"queries_served\": {}, ", m.queries_served));
        s.push_str(&format!("\"levels_reused\": {}, ", m.levels_reused));
        s.push_str(&format!(
            "\"us_per_query\": {}, ",
            m.us_per_query.map_or("null".to_string(), number)
        ));
        s.push_str(&format!("\"p50_us\": {}, ", m.p50_us.map_or("null".to_string(), number)));
        s.push_str(&format!("\"p99_us\": {}, ", m.p99_us.map_or("null".to_string(), number)));
        s.push_str(&format!("\"quota_rejections\": {}, ", m.quota_rejections));
        s.push_str(&format!("\"reuse_rate\": {}", m.reuse_rate.map_or("null".to_string(), number)));
        s.push('}');
        if i + 1 < measurements.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// CI guard for the work-stealing executor's scaling (D10): runs the
/// wide dense fixture at `threads = 1` and `threads = 4` and fails when
/// the 4-thread wall time is not below **0.9×** the single-thread wall
/// (loose on purpose: it exists to catch a regression back to flat
/// scaling, not to certify an efficiency figure). Estimates must also
/// stay bit-identical across the two runs.
///
/// On hosts without real parallelism (< 2 hardware threads) the wall
/// comparison is physically vacuous — four time-sliced workers cannot
/// beat one — so the check reports a skip (`Ok` with a message) and the
/// bit-identity comparison still runs.
pub fn scaling_smoke(quick: bool, seed: u64) -> Result<String, String> {
    let (m, n, eps) = if quick { (24, 10, 0.4) } else { (48, 16, 0.4) };
    let nfa = random_nfa(
        &RandomNfaConfig { states: m, alphabet: 2, density: 2.5, accepting: 2 },
        &mut SmallRng::seed_from_u64(seed ^ 0xD10),
    );
    let run = |threads: usize| {
        let kind = CounterKind::Fpras { threads, batch: true, share: true };
        run_counter(&kind, &nfa, n, eps, 0.1, seed).expect("scaling fixture run")
    };
    // Discarded warmup, like `counter_matrix`: the first run on a fresh
    // working-set shape pays allocator/cache warmup, and a cold t = 1
    // baseline would bias the guard toward false-passing (an inflated
    // w1 can hide a regression to flat scaling).
    let _ = run(1);
    let one = run(1);
    let four = run(4);
    if one.estimate != four.estimate {
        return Err(format!(
            "threads=1 and threads=4 estimates differ: {} vs {}",
            one.estimate.to_f64(),
            four.estimate.to_f64()
        ));
    }
    let (w1, w4) = (one.wall.as_secs_f64(), four.wall.as_secs_f64());
    let cpus = host_cpus();
    let summary = format!(
        "dense-random-{m}/n={n}: wall t=1 {w1:.3}s, t=4 {w4:.3}s \
         (ratio {:.3}, host cpus {cpus}, steals {})",
        w4 / w1,
        four.pool_steals
    );
    if cpus < 2 {
        return Ok(format!("SKIP wall check (single-CPU host): {summary}"));
    }
    if w4 < 0.9 * w1 {
        Ok(summary)
    } else {
        Err(format!("threads=4 must beat 0.9× threads=1: {summary}"))
    }
}

/// Runs the matrix and writes it to `path` (or [`DEFAULT_JSON_PATH`]).
/// Returns the resolved path.
pub fn write_counter_json(path: Option<&str>, quick: bool, seed: u64) -> std::io::Result<String> {
    let path = path.unwrap_or(DEFAULT_JSON_PATH).to_string();
    let measurements = counter_matrix(quick, seed);
    std::fs::write(&path, to_json(&measurements))?;
    Ok(path)
}

/// JSON string escaping (the subset our labels can contain).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON numbers; infinities/NaN (possible for `log2(0)`) become
/// `null` to keep the document valid.
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_well_formed() {
        let ms = vec![
            CounterMeasurement {
                instance: "i/n=4".into(),
                method: "fpras(ours)".into(),
                threads: 2,
                wall_seconds: 0.25,
                estimate: 12.0,
                estimate_log2: 12f64.log2(),
                ops: 99,
                cells_deduped: 7,
                preestimate_hits: 3,
                memo_entries_shared: 120,
                pool_steals: 5,
                distinct_frontiers: 11,
                intern_hits: 42,
                phase: fpras_core::PhaseWall {
                    plan: std::time::Duration::from_millis(5),
                    count: std::time::Duration::from_millis(125),
                    share: std::time::Duration::from_millis(10),
                    sample: std::time::Duration::from_millis(80),
                    merge: std::time::Duration::from_millis(30),
                },
                parallel_efficiency: Some(0.5),
                host_cpus: 4,
                queries_served: 12,
                levels_reused: 30,
                us_per_query: Some(125.5),
                p50_us: Some(6.25),
                p99_us: Some(980.0),
                quota_rejections: 17,
                reuse_rate: Some(0.625),
            },
            CounterMeasurement {
                instance: "empty \"quoted\"".into(),
                method: "exact-dp".into(),
                threads: 0,
                wall_seconds: 0.0,
                estimate: 0.0,
                estimate_log2: f64::NEG_INFINITY,
                ops: 0,
                cells_deduped: 0,
                preestimate_hits: 0,
                memo_entries_shared: 0,
                pool_steals: 0,
                distinct_frontiers: 0,
                intern_hits: 0,
                phase: fpras_core::PhaseWall::default(),
                parallel_efficiency: None,
                host_cpus: 4,
                queries_served: 1,
                levels_reused: 0,
                us_per_query: None,
                p50_us: None,
                p99_us: None,
                quota_rejections: 0,
                reuse_rate: None,
            },
        ];
        let doc = to_json(&ms);
        assert!(doc.starts_with("[\n"));
        assert!(doc.ends_with("]\n"));
        assert!(doc.contains("\"threads\": 2"));
        assert!(doc.contains("\"cells_deduped\": 7"));
        assert!(doc.contains("\"preestimate_hits\": 3"));
        assert!(doc.contains("\"memo_entries_shared\": 120"));
        assert!(doc.contains("\"pool_steals\": 5"));
        assert!(doc.contains("\"distinct_frontiers\": 11"));
        assert!(doc.contains("\"intern_hits\": 42"));
        assert!(doc.contains("\"phase_plan_s\": 0.005"));
        assert!(doc.contains("\"phase_count_s\": 0.125"));
        assert!(doc.contains("\"phase_share_s\": 0.01"));
        assert!(doc.contains("\"phase_sample_s\": 0.08"));
        assert!(doc.contains("\"phase_merge_s\": 0.03"));
        assert!(doc.contains("\"phase_count_s\": 0,"), "all-zero phase for exact rows");
        assert!(doc.contains("\"parallel_efficiency\": 0.5"));
        assert!(doc.contains("\"parallel_efficiency\": null"));
        assert!(doc.contains("\"host_cpus\": 4"));
        assert!(doc.contains("\"queries_served\": 12"));
        assert!(doc.contains("\"levels_reused\": 30"));
        assert!(doc.contains("\"us_per_query\": 125.5"));
        assert!(doc.contains("\"us_per_query\": null"));
        assert!(doc.contains("\"p50_us\": 6.25"));
        assert!(doc.contains("\"p50_us\": null"));
        assert!(doc.contains("\"p99_us\": 980"));
        assert!(doc.contains("\"quota_rejections\": 17"));
        assert!(doc.contains("\"reuse_rate\": 0.625"));
        assert!(doc.contains("\"reuse_rate\": null"));
        assert!(doc.contains("\\\"quoted\\\""));
        // log2(0) must not produce invalid JSON.
        assert!(doc.contains("\"estimate_log2\": null"));
        assert_eq!(doc.matches('{').count(), 2);
        assert_eq!(doc.matches('}').count(), 2);
    }

    #[test]
    fn matrix_covers_methods_and_threads() {
        let ms = counter_matrix(true, 7);
        // 3 small instances × (9 fpras settings + 1 exact) + 2
        // robp-encoded instances × 3 robp settings + 2 large instances
        // × (4 thread counts + 1 exact) + 2 query-trace rows + 2
        // load-harness rows.
        assert_eq!(ms.len(), 50);
        // Load harness: latency distribution recorded, reuse nonzero,
        // and only the quota'd row sheds queries.
        let load = ms.iter().find(|m| m.method == "session(load)").expect("load row");
        let quotad = ms.iter().find(|m| m.method == "session(load+quota)").expect("load+quota row");
        assert!(load.p50_us.is_some() && load.p99_us.is_some());
        assert!(load.levels_reused > 0 && load.quota_rejections == 0);
        assert!(quotad.quota_rejections > 0, "tight ledger must show rejections");
        // Query-trace family: the session row must show real level
        // reuse and beat the fresh-run-per-query control on amortized
        // per-query cost — reuse is a strict work reduction, so this
        // holds even on a single-CPU recorder.
        let session = ms.iter().find(|m| m.method == "session(trace)").expect("session row");
        let control = ms.iter().find(|m| m.method == "fresh-per-query").expect("control row");
        assert_eq!(session.instance, control.instance);
        assert_eq!(session.queries_served, control.queries_served);
        assert!(session.levels_reused > 0, "trace must reuse levels");
        assert_eq!(control.levels_reused, 0);
        assert_eq!(session.estimate, control.estimate, "answers must be bit-identical (D11)");
        assert!(session.ops < control.ops, "reuse must save membership ops");
        let (s_us, c_us) =
            (session.us_per_query.expect("amortized"), control.us_per_query.expect("amortized"));
        assert!(s_us < c_us, "session {s_us} µs/query must beat control {c_us} µs/query");
        assert!(ms.iter().any(|m| m.method == "exact-dp"));
        assert!(ms.iter().any(|m| m.threads == 8));
        // Interner evidence (§2.5): the dense-random family re-keys the
        // same frontiers constantly, so its FPRAS rows must show both
        // distinct frontiers and repeat-intern hits.
        let dense = ms
            .iter()
            .find(|m| m.instance.starts_with("dense-random-") && m.method == "fpras(ours)")
            .expect("dense fpras row");
        assert!(dense.distinct_frontiers > 0, "interner must store frontiers");
        assert!(dense.intern_hits > 0, "dense-random must re-intern frontiers");
        // Phase attribution (D15): engine rows carry a nonzero phase
        // breakdown that never exceeds the row's total wall.
        assert!(dense.phase.total() > std::time::Duration::ZERO, "phase wall must accrue");
        assert!(dense.phase.total().as_secs_f64() <= dense.wall_seconds, "phases ⊆ wall");
        assert!(ms.iter().any(|m| m.method == "fpras(unbatched)"));
        assert!(ms.iter().any(|m| m.method == "fpras(unshared)"));
        // The large skewed instances are present, thread-identical, and
        // carry the efficiency column on every threads ≥ 1 row.
        for prefix in ["dense-random-", "unrolled-contains-11"] {
            let rows: Vec<_> = ms.iter().filter(|m| m.instance.starts_with(prefix)).collect();
            assert_eq!(rows.len(), 5, "{prefix}");
            let dets: Vec<f64> =
                rows.iter().filter(|m| m.threads >= 1).map(|m| m.estimate).collect();
            assert_eq!(dets.len(), 4, "{prefix}");
            assert!(dets.windows(2).all(|w| w[0] == w[1]), "{prefix}: {dets:?}");
            for m in rows.iter().filter(|m| m.method == "fpras(ours)") {
                assert!(m.parallel_efficiency.is_some(), "{prefix} t={}", m.threads);
            }
            // Against exact ground truth (the ε band of the large rows).
            let exact = rows.iter().find(|m| m.method == "exact-dp").expect("exact row").estimate;
            for m in rows.iter().filter(|m| m.method != "exact-dp") {
                let err = (m.estimate - exact).abs() / exact;
                assert!(err < 0.5, "{prefix} t={}: err {err}", m.threads);
            }
        }
        // Deterministic policy: identical estimates for threads 1/2/4/8,
        // batched or not (batching shares work, never changes output).
        for (name, _) in [("contains-11", ()), ("ones-mod-4", ()), ("div-by-5", ())] {
            let dets: Vec<f64> = ms
                .iter()
                .filter(|m| m.instance.starts_with(name) && m.threads >= 1)
                .map(|m| m.estimate)
                .collect();
            assert!(dets.windows(2).all(|w| w[0] == w[1]), "{name}: {dets:?}");
            // The unbatched control re-runs shared estimations: same
            // estimate, strictly more membership ops on these fixtures.
            let batched = ms
                .iter()
                .find(|m| {
                    m.instance.starts_with(name) && m.method == "fpras(ours)" && m.threads == 0
                })
                .expect("batched serial row");
            let unbatched = ms
                .iter()
                .find(|m| {
                    m.instance.starts_with(name) && m.method == "fpras(unbatched)" && m.threads == 0
                })
                .expect("unbatched serial row");
            assert_eq!(batched.estimate, unbatched.estimate, "{name}");
            assert!(batched.cells_deduped > 0, "{name}: dedup must fire");
            assert_eq!(unbatched.cells_deduped, 0, "{name}");
            assert!(batched.ops < unbatched.ops, "{name}: batching must save ops");
            // The unshared control: same estimate, no pre-estimate hits.
            let unshared = ms
                .iter()
                .find(|m| {
                    m.instance.starts_with(name) && m.method == "fpras(unshared)" && m.threads == 0
                })
                .expect("unshared serial row");
            assert_eq!(batched.estimate, unshared.estimate, "{name}: share knob is work-only");
            assert_eq!(unshared.preestimate_hits, 0, "{name}");
        }
        // nROBP substrate family (D14): the robp-encoded slices are the
        // same languages, so the base instance's exact row is their
        // ground truth; labels are the robp ones, the batch knob is
        // work-only (bit-identical estimate), and a threads ≥ 1 row is
        // present.
        for name in ["contains-11", "ones-mod-4"] {
            let exact = ms
                .iter()
                .find(|m| m.instance.starts_with(name) && m.method == "exact-dp")
                .expect("exact row")
                .estimate;
            let rows: Vec<_> =
                ms.iter().filter(|m| m.instance.starts_with(&format!("robp-{name}"))).collect();
            assert_eq!(rows.len(), 3, "robp-{name}");
            for m in &rows {
                let err = (m.estimate - exact).abs() / exact;
                assert!(err < 0.25, "robp-{name} t={}: err {err}", m.threads);
            }
            let ours = rows
                .iter()
                .find(|m| m.method == "robp(ours)" && m.threads == 0)
                .expect("robp serial row");
            let unbatched =
                rows.iter().find(|m| m.method == "robp(unbatched)").expect("robp unbatched row");
            assert_eq!(ours.estimate, unbatched.estimate, "robp-{name}: batch knob is work-only");
            assert!(ours.ops <= unbatched.ops, "robp-{name}: batching must not add ops");
            assert!(rows.iter().any(|m| m.threads == 4), "robp-{name}");
        }
        // And every FPRAS estimate is within the ε band of exact.
        for (name, _) in [("contains-11", ()), ("ones-mod-4", ()), ("div-by-5", ())] {
            let exact = ms
                .iter()
                .find(|m| m.instance.starts_with(name) && m.method == "exact-dp")
                .expect("exact row")
                .estimate;
            for m in ms.iter().filter(|m| m.instance.starts_with(name) && m.method != "exact-dp") {
                let err = (m.estimate - exact).abs() / exact;
                assert!(err < 0.25, "{name} t={}: err {err}", m.threads);
            }
        }
    }
}
