//! Benchmark and experiment harness.
//!
//! Reproduces every quantitative claim of *"A faster FPRAS for #NFA"* as
//! a measured experiment (the paper is a theory paper — its "tables" are
//! the complexity claims of §1 and Theorems 1–3; DESIGN.md §4 maps each
//! claim to an experiment ID).
//!
//! * `cargo run --release -p fpras-bench --bin experiments` regenerates
//!   the EXPERIMENTS.md tables (`--quick` for a fast smoke pass,
//!   `e<N>` to run a single experiment);
//! * `cargo bench` runs the Criterion micro/meso benchmarks.

pub mod experiments;
pub mod json;
pub mod load;
pub mod table;

pub use experiments::{registry, Experiment};
pub use json::{scaling_smoke, write_counter_json, CounterMeasurement, DEFAULT_JSON_PATH};
pub use load::load_harness_rows;
