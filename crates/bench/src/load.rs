//! Replayable mixed-tenant load harness: the serve-loop workload as a
//! measured experiment.
//!
//! Drives a large [`query_trace`] (10⁵ queries at full size, with
//! repeat-bias *and* hot-tenant locality) through the same machinery
//! `nfa-count serve` uses — a [`ServiceRegistry`] plus an
//! [`AdmissionController`] with per-tenant level ledgers — and records
//! what a latency SLO actually cares about: the p50/p99 per-query
//! distribution (not just the amortized mean), the reuse rate, and how
//! many queries the quota machinery turned away. Two rows land in
//! `BENCH_counter.json`:
//!
//! * `session(load)` — unlimited quotas: every query served, reuse does
//!   the heavy lifting (p50 is a cache hit, p99 is a cold extension);
//! * `session(load+quota)` — a tight `max_total_levels` ledger: the
//!   same trace with admission control visibly shedding the over-limit
//!   tail (`quota_rejections > 0`) while admitted queries still answer
//!   bit-identically.
//!
//! Wall-clock claims are single-threaded on purpose and the row carries
//! `host_cpus` — on the 1-CPU recording host the honest story is
//! latency distribution and reuse, not thread scaling (the CI
//! scaling-smoke job owns that claim, gated on `available_parallelism`).

use crate::json::CounterMeasurement;
use fpras_core::service::{
    AdmissionController, QuotaConfig, ServiceRegistry, SessionKey, SessionPolicy,
};
use fpras_core::{FprasError, LatencyHistogram, Params, PhaseWall};
use fpras_workloads::{families, query_trace, QueryTraceConfig};
use rand::{rngs::SmallRng, SeedableRng};
use std::time::Instant;

/// Hardware threads on the recording host.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One serve-equivalent pass over the trace: per-query admission
/// (ledger precheck + op-budget install), per-query latency, recycle on
/// poison — the `nfa-count serve` data path without the line protocol.
fn run_load(
    trace: &[fpras_workloads::TraceQuery],
    automata: &[fpras_automata::Nfa],
    params: &[Params],
    policy: &SessionPolicy,
    quota: QuotaConfig,
    instance: &str,
    method: &str,
) -> CounterMeasurement {
    let keys: Vec<SessionKey> =
        automata.iter().zip(params).map(|(nfa, p)| SessionKey::new(nfa, p, policy)).collect();
    let mut registry = ServiceRegistry::new(automata.len());
    let mut admission = AdmissionController::new(quota);
    let mut ledgers = vec![0u64; automata.len()];
    // The per-query distribution lives in a mergeable log-bucketed
    // histogram (the same type the serve layer aggregates per tenant) —
    // no raw-sample vector, no end-of-run sort. Quantiles come out as
    // bucket upper edges: within one power-of-2 bucket of the exact
    // nearest-rank statistic.
    let mut latency = LatencyHistogram::default();
    let mut last = fpras_numeric::ExtFloat::ZERO;
    let start = Instant::now();
    for q in trace {
        let t0 = Instant::now();
        let (session, _recycled) = registry
            .session_with_key_recycled(
                keys[q.automaton].clone(),
                &automata[q.automaton],
                &params[q.automaton],
                policy,
            )
            .expect("load params are valid by construction");
        let needed = q.len.saturating_sub(session.levels_built()) as u64;
        if admission.admit_levels(ledgers[q.automaton], needed).is_err() {
            latency.record_duration(t0.elapsed());
            continue;
        }
        session
            .set_build_ops_budget(admission.per_query_ops_cap(session.run_stats().membership_ops));
        let built_before = session.levels_built();
        match session.estimate(q.len) {
            Ok(est) => last = est,
            Err(FprasError::BudgetExceeded { .. }) => admission.record_budget_abort(),
            Err(e) => panic!("load query failed: {e}"),
        }
        ledgers[q.automaton] += (session.levels_built() - built_before) as u64;
        latency.record_duration(t0.elapsed());
    }
    let wall = start.elapsed();
    let totals = registry.session_totals();
    let ops: u64 = registry.sessions().map(|s| s.run_stats().membership_ops).sum();
    let mut phase = PhaseWall::default();
    for s in registry.sessions() {
        phase.merge(&s.run_stats().phase);
    }
    CounterMeasurement {
        instance: instance.to_string(),
        method: method.to_string(),
        threads: match policy {
            SessionPolicy::Serial { .. } => 0,
            SessionPolicy::Deterministic { threads, .. } => *threads,
        },
        wall_seconds: wall.as_secs_f64(),
        estimate: last.to_f64(),
        estimate_log2: last.log2(),
        ops,
        cells_deduped: 0,
        preestimate_hits: 0,
        memo_entries_shared: 0,
        pool_steals: 0,
        distinct_frontiers: 0,
        intern_hits: 0,
        phase,
        parallel_efficiency: None,
        host_cpus: host_cpus(),
        queries_served: totals.queries_served,
        levels_reused: totals.levels_reused,
        us_per_query: Some(wall.as_secs_f64() * 1e6 / trace.len() as f64),
        p50_us: latency.quantile(0.5).map(|us| us as f64),
        p99_us: latency.quantile(0.99).map(|us| us as f64),
        quota_rejections: admission.stats().quota_rejections(),
        reuse_rate: Some(totals.reuse_rate()),
    }
}

/// The two load-harness rows for `BENCH_counter.json`. `quick` shrinks
/// the trace (2 000 queries instead of 100 000) for smoke passes.
pub fn load_harness_rows(quick: bool, seed: u64) -> Vec<CounterMeasurement> {
    let (queries, max_len) = if quick { (2_000, 10) } else { (100_000, 14) };
    let automata =
        [families::contains_substring(&[1, 1]), families::ones_mod_k(4), families::divisible_by(5)];
    let config = QueryTraceConfig {
        queries,
        automata: automata.len(),
        min_len: 4,
        max_len,
        repeat_bias: 0.6,
        hot_automaton_bias: 0.5,
    };
    let trace = query_trace(&config, &mut SmallRng::seed_from_u64(seed ^ 0x10AD));
    let params: Vec<Params> = automata
        .iter()
        .map(|nfa| Params::for_session(0.25, 0.1, nfa.num_states(), max_len))
        .collect();
    let policy = SessionPolicy::Deterministic { seed, threads: 1 };
    let instance = format!("load-harness/q={queries}");
    let unlimited = run_load(
        &trace,
        &automata,
        &params,
        &policy,
        QuotaConfig::default(),
        &instance,
        "session(load)",
    );
    // The quota row caps each tenant's cumulative level ledger below
    // the trace's max length: queries above the built horizon are shed
    // once the ledger fills, everything at or below keeps being served
    // from reuse.
    let quota =
        QuotaConfig { max_total_levels: Some(max_len as u64 - 4), ..QuotaConfig::default() };
    let quota_row =
        run_load(&trace, &automata, &params, &policy, quota, &instance, "session(load+quota)");
    vec![unlimited, quota_row]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The histogram quantiles that replaced the hand-rolled
    /// nearest-rank sort must stay within one power-of-2 bucket of the
    /// exact statistic — that is the bound the refreshed
    /// `BENCH_counter.json` latency columns are held to.
    #[test]
    fn histogram_quantiles_within_one_bucket_of_nearest_rank() {
        let samples: Vec<u64> = vec![3, 3, 5, 9, 17, 17, 33, 65, 129, 900];
        let mut hist = LatencyHistogram::default();
        for &s in &samples {
            hist.record(s);
        }
        for q in [0.5, 0.99] {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let edge = hist.quantile(q).expect("non-empty");
            // The containing bucket's upper edge: at least the exact
            // value, and less than one doubling above it.
            assert!(edge >= exact, "q={q}: edge {edge} < exact {exact}");
            assert!(edge < 2 * (exact + 1), "q={q}: edge {edge} ≥ 2·({exact}+1)");
            assert!((edge + 1).is_power_of_two(), "edges are 2^k - 1, got {edge}");
        }
    }

    #[test]
    fn load_rows_record_latency_reuse_and_rejections() {
        let rows = load_harness_rows(true, 11);
        assert_eq!(rows.len(), 2);
        let (free, capped) = (&rows[0], &rows[1]);
        assert_eq!(free.method, "session(load)");
        assert_eq!(capped.method, "session(load+quota)");
        // Unlimited: everything served, heavy reuse, zero rejections.
        assert_eq!(free.queries_served, 2_000);
        assert_eq!(free.quota_rejections, 0);
        assert!(free.levels_reused > 0, "locality must produce reuse");
        assert!(free.reuse_rate.expect("trace row") > 0.5, "{:?}", free.reuse_rate);
        // The tail is the cold builds; the median is a reuse hit. Both
        // quantiles are histogram bucket upper edges (2^k − 1 µs).
        let (p50, p99) = (free.p50_us.expect("p50"), free.p99_us.expect("p99"));
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        for v in [p50, p99] {
            assert!((v as u64 + 1).is_power_of_two(), "not a bucket edge: {v}");
        }
        // Quota'd: over-ledger queries shed, the rest still served —
        // and denial is free, so served answers agree with the
        // unlimited run (same seed ⇒ same levels ⇒ same estimates).
        assert!(capped.quota_rejections > 0, "tight ledger must reject");
        assert!(capped.queries_served < free.queries_served);
        assert!(capped.queries_served > 0, "quota must shed the tail, not the trace");
        assert!(capped.levels_reused > 0);
    }
}
