//! E12–E14 — extension experiments beyond the paper's claims:
//! the path-importance-sampling baseline's variance wall (E12), the
//! exact-method landscape including BDDs (E13), and the deterministic
//! level-parallel runner (E14). DESIGN.md §4 lists all three under
//! "Extensions beyond the paper".

use crate::table::{fdur, fnum, Table};
use fpras_automata::exact::{count_exact, Determinization};
use fpras_baselines::path_importance_sampling;
use fpras_bdd::compile_slice_budgeted;
use fpras_core::{run_parallel, FprasRun, Params};
use fpras_workloads::{ambiguous, families};
use rand::{rngs::SmallRng, SeedableRng};
use std::time::Instant;

/// E12: the unbiased path-count importance sampler vs the FPRAS as
/// instance ambiguity grows.
pub fn e12_path_is(quick: bool) -> String {
    let mut out = String::new();
    out.push_str(
        "### E12 — path-count importance sampling vs the FPRAS (extension)\n\n\
         The cheap competitor: sample accepting paths, reweight by per-word ambiguity\n\
         (`baselines::path_is`). Unbiased with zero variance on unambiguous automata —\n\
         and a self-reported variance that grows with ambiguity skew, while the FPRAS\n\
         error is flat by construction. `rse` = the estimator's relative standard\n\
         error; `max amb` = largest per-word run count seen.\n\n",
    );
    let trials = if quick { 500 } else { 4000 };
    let n = 12;
    let instances: Vec<(String, fpras_automata::Nfa)> = vec![
        ("ones-mod-4 (unambiguous)".into(), families::ones_mod_k(4)),
        ("contains-11".into(), families::contains_substring(&[1, 1])),
        ("redundant x8".into(), ambiguous::redundant_copies(8)),
        (
            "overlap union x4".into(),
            ambiguous::overlapping_union(&[&[1, 1], &[1, 1, 0], &[0, 1, 1], &[1]]),
        ),
    ];
    let mut table = Table::new(vec![
        "instance",
        "exact",
        "path-is est",
        "rse",
        "max amb",
        "pis wall",
        "fpras est",
        "fpras err",
        "fpras wall",
    ]);
    for (name, nfa) in instances {
        let exact = count_exact(&nfa, n).expect("small").to_f64();
        let started = Instant::now();
        let mut rng = SmallRng::seed_from_u64(1200);
        let pis = path_importance_sampling(&nfa, n, trials, &mut rng).expect("non-empty");
        let pis_wall = started.elapsed();

        let params = Params::practical(0.2, 0.1, nfa.num_states(), n);
        let started = Instant::now();
        let mut rng = SmallRng::seed_from_u64(1201);
        let run = FprasRun::run(&nfa, n, &params, &mut rng).expect("fpras");
        let fp_wall = started.elapsed();
        let fp_err = (run.estimate().to_f64() - exact).abs() / exact;
        table.row(vec![
            name,
            fnum(exact),
            fnum(pis.estimate.to_f64()),
            format!("{:.4}", pis.rel_std_error),
            fnum(pis.max_ambiguity),
            fdur(pis_wall),
            fnum(run.estimate().to_f64()),
            format!("{fp_err:.4}"),
            fdur(fp_wall),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: on unambiguous automata path-IS is exact and essentially free — use\n\
         it when you can certify unambiguity. Ambiguity skew inflates `rse` at a fixed\n\
         trial budget; the FPRAS pays a higher constant cost for an error that does not\n\
         depend on the instance's run structure.\n",
    );
    out
}

/// E13: the exact-method landscape — subset-DP width vs BDD size vs the
/// FPRAS, one instance per regime.
pub fn e13_bdd_landscape(quick: bool) -> String {
    let mut out = String::new();
    out.push_str(
        "### E13 — exact-method landscape: determinization DP vs BDD (extension)\n\n\
         Both exact counters are worst-case exponential in *different* measures: the\n\
         DP in distinct reachable state-subsets per level, the BDD in distinct suffix\n\
         languages (Myhill–Nerode classes) per cut. Every subset determines a suffix\n\
         language, so BDD width ≤ DP width pointwise — sometimes exponentially\n\
         smaller — yet both die on `halves-differ`, where only the FPRAS answers.\n\
         `—` marks a blown budget.\n\n",
    );
    let cap = 1 << 14;
    let k_fixed = if quick { 12 } else { 18 };
    // Full mode picks k so that 2^{k+1} exceeds the cap: both exact
    // methods must actually die, not merely sweat.
    let k_hard = if quick { 8 } else { 14 };
    let instances: Vec<(String, fpras_automata::Nfa, usize)> = vec![
        (format!("kth-from-end k={k_fixed}"), families::kth_symbol_from_end(k_fixed), 2 * k_fixed),
        (format!("halves-differ k={k_hard}"), families::halves_differ(k_hard), 2 * k_hard),
        ("contains-101".into(), families::contains_substring(&[1, 0, 1]), 24),
        ("divisible-by-7".into(), families::divisible_by(7), 24),
    ];
    let mut table = Table::new(vec![
        "instance",
        "m",
        "n",
        "dp width",
        "dp wall",
        "bdd nodes",
        "bdd wall",
        "fpras log2",
        "fpras wall",
    ]);
    for (name, nfa, n) in instances {
        let started = Instant::now();
        let dp = Determinization::build_capped(&nfa, n, cap);
        let dp_wall = started.elapsed();
        let (dp_width, dp_wall_s) = match &dp {
            Ok(d) => (d.max_width().to_string(), fdur(dp_wall)),
            Err(_) => ("—".into(), "—".into()),
        };
        let started = Instant::now();
        let bdd = compile_slice_budgeted(&nfa, n, cap);
        let bdd_wall = started.elapsed();
        let (bdd_nodes, bdd_wall_s) = match &bdd {
            Ok(c) => (c.bdd.num_nodes().to_string(), fdur(bdd_wall)),
            Err(_) => ("—".into(), "—".into()),
        };
        let params = Params::practical(0.25, 0.1, nfa.num_states(), n);
        let started = Instant::now();
        let run = run_parallel(&nfa, n, &params, 1300, 8).expect("fpras");
        let fp_wall = started.elapsed();
        table.row(vec![
            name,
            nfa.num_states().to_string(),
            n.to_string(),
            dp_width,
            dp_wall_s,
            bdd_nodes,
            bdd_wall_s,
            format!("{:.3}", run.estimate().log2()),
            fdur(fp_wall),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: `kth-from-end` pins a fixed position once the length is fixed, so\n\
         its BDD collapses to one decision node while the DP explodes; `halves-differ`\n\
         kills both caps; structured languages are cheap everywhere. The FPRAS column\n\
         is flat — its cost never depends on these width measures.\n",
    );
    out
}

/// E14: level-parallel runner — determinism and speedup vs thread count.
pub fn e14_parallel(quick: bool) -> String {
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let mut out = String::new();
    out.push_str(&format!(
        "### E14 — deterministic level-parallel runner (extension)\n\n\
         States within a level are independent given the previous level, so Algorithm 3\n\
         parallelizes level-synchronously. Per-(state, level, phase) RNG streams make\n\
         the output bit-identical for every thread count — the speedup is pure\n\
         scheduling, and caps at the host's core count. **This host reports {cores}\n\
         available core(s)**; with 1 core the expected speedup is 1.0x and the\n\
         determinism column is the claim under test. Instance: `halves-differ`\n\
         (the hard regime from E13).\n\n"
    ));
    let k = if quick { 8 } else { 11 };
    let nfa = families::halves_differ(k);
    let n = 2 * k;
    let params = Params::practical(0.25, 0.1, nfa.num_states(), n);
    let mut table = Table::new(vec!["threads", "wall", "speedup", "estimate log2"]);
    let mut base = None;
    let mut estimates: Vec<f64> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let started = Instant::now();
        let run = run_parallel(&nfa, n, &params, 1400, threads).expect("fpras");
        let wall = started.elapsed();
        let base_wall = *base.get_or_insert(wall.as_secs_f64());
        estimates.push(run.estimate().to_f64());
        table.row(vec![
            threads.to_string(),
            fdur(wall),
            format!("{:.2}x", base_wall / wall.as_secs_f64()),
            format!("{:.6}", run.estimate().log2()),
        ]);
    }
    out.push_str(&table.render());
    let deterministic = estimates.windows(2).all(|w| w[0] == w[1]);
    out.push_str(&format!(
        "\nEstimates identical across thread counts: **{deterministic}** (exact f64\n\
         equality — determinism is testable, not aspirational). True count log2 = {:.6}.\n",
        families::halves_differ_count(k).log2(),
    ));
    out
}

/// E15: simulation-quotient preprocessing — same FPRAS, smaller `m`.
pub fn e15_reduction(quick: bool) -> String {
    use fpras_automata::simulation::reduce;
    let mut out = String::new();
    out.push_str(
        "### E15 — simulation-quotient preprocessing (extension)\n\n\
         Quotienting by simulation equivalence preserves the language exactly and\n\
         shrinks redundant automata before the DP runs — the cheapest lever on a cost\n\
         that grows like `m²..m³`. Each row runs the identical FPRAS on the original\n\
         and on the reduced automaton (same seed).\n\n",
    );
    let copies = if quick { 4 } else { 8 };
    let instances: Vec<(String, fpras_automata::Nfa, usize)> = vec![
        (format!("redundant x{copies}"), ambiguous::redundant_copies(copies), 12),
        (
            "overlap union x4".into(),
            ambiguous::overlapping_union(&[&[1, 1], &[1, 1, 0], &[0, 1, 1], &[1]]),
            12,
        ),
        ("ones-mod-5 (already minimal)".into(), families::ones_mod_k(5), 12),
    ];
    let mut table = Table::new(vec![
        "instance",
        "m",
        "m reduced",
        "wall",
        "wall reduced",
        "est log2",
        "est log2 reduced",
    ]);
    for (name, nfa, n) in instances {
        let started = Instant::now();
        let reduced = reduce(&nfa);
        let reduce_cost = started.elapsed();
        let run_one = |a: &fpras_automata::Nfa| {
            let params = Params::practical(0.25, 0.1, a.num_states(), n);
            let started = Instant::now();
            let mut rng = SmallRng::seed_from_u64(1500);
            let run = FprasRun::run(a, n, &params, &mut rng).expect("fpras");
            (run.estimate().log2(), started.elapsed())
        };
        let (est, wall) = run_one(&nfa);
        let (est_r, wall_r) = run_one(&reduced);
        let _ = reduce_cost;
        table.row(vec![
            name,
            nfa.num_states().to_string(),
            reduced.num_states().to_string(),
            fdur(wall),
            fdur(wall_r),
            format!("{est:.3}"),
            format!("{est_r:.3}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: both estimates target the same language, so the log2 columns agree\n\
         within ε; the wall-clock gap is the preprocessing dividend (zero on automata\n\
         that are already simulation-minimal). Reduction itself costs microseconds at\n\
         these sizes.\n",
    );
    out
}

/// E16: spanner answer counting — the information-extraction pipeline
/// end-to-end on growing documents.
pub fn e16_spanner(quick: bool) -> String {
    use fpras_automata::exact::count_paths;
    use fpras_automata::Word;
    use fpras_spanner::{compile_spanner, count_answers_exact, estimate_answers, VSetBuilder};

    let mut out = String::new();
    out.push_str(
        "### E16 — document spanners: counting extracted tuples (extension)\n\n\
         The information-extraction application (§1, ref [4]): a two-variable spanner\n\
         extracts ordered pairs of 1-runs from a document; distinct answers are the\n\
         length-(len+1) words of the compiled marker NFA. `runs` counts accepting\n\
         paths of that NFA — the overcount a run-based counter would report — while\n\
         `answers` is the true #NFA value the FPRAS approximates.\n\n",
    );
    // .* ⊢x 1+ x⊣ .* ⊢y 1+ y⊣ .*  — built twice as redundant branches,
    // the way unions of extraction rules come out of rule compilers:
    // every answer is produced by (at least) two runs.
    let spanner = {
        let mut b = VSetBuilder::new(fpras_automata::Alphabet::binary(), 2);
        let init = b.add_state();
        b.set_initial(init);
        for sym in [0, 1] {
            b.read(init, sym, init);
        }
        for _ in 0..2 {
            let s: Vec<_> = (0..6).map(|_| b.add_state()).collect();
            b.add_accepting(s[5]);
            for sym in [0, 1] {
                b.read(s[2], sym, s[2]);
                b.read(s[5], sym, s[5]);
            }
            b.open(init, 0, s[0]);
            b.read(s[0], 1, s[1]);
            b.read(s[1], 1, s[1]);
            b.close(s[1], 0, s[2]);
            b.open(s[2], 1, s[3]);
            b.read(s[3], 1, s[4]);
            b.read(s[4], 1, s[4]);
            b.close(s[4], 1, s[5]);
        }
        b.build().expect("valid spanner")
    };
    let lens: &[usize] = if quick { &[6, 10] } else { &[6, 10, 14, 18] };
    let mut table = Table::new(vec![
        "doc len",
        "nfa states",
        "answers",
        "runs",
        "fpras est",
        "err",
        "fpras wall",
    ]);
    for &len in lens {
        // Mixed document: 1-runs separated by zeros.
        let doc = Word::from_symbols((0..len).map(|i| u8::from(i % 4 != 3)).collect::<Vec<_>>());
        let compiled = compile_spanner(&spanner, &doc).expect("compile");
        let answers = count_answers_exact(&spanner, &doc).expect("exact").to_f64();
        let runs = count_paths(&compiled.nfa, compiled.word_len()).to_f64();
        let started = Instant::now();
        let mut rng = SmallRng::seed_from_u64(1600 + len as u64);
        let est = estimate_answers(&spanner, &doc, 0.25, 0.1, &mut rng).expect("fpras");
        let wall = started.elapsed();
        let err =
            if answers == 0.0 { 0.0 } else { (est.estimate.to_f64() - answers).abs() / answers };
        table.row(vec![
            len.to_string(),
            est.nfa_states.to_string(),
            fnum(answers),
            fnum(runs),
            fnum(est.estimate.to_f64()),
            format!("{err:.4}"),
            fdur(wall),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: the runs column outgrows the answers column — the reduction turns\n\
         run-ambiguity into word multiplicity, which is exactly what the FPRAS counts\n\
         correctly and a path counter cannot.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_renders() {
        let out = e16_spanner(true);
        assert!(out.contains("E16"));
        assert!(out.contains("answers"));
    }

    #[test]
    fn e15_renders() {
        let out = e15_reduction(true);
        assert!(out.contains("E15"));
        assert!(out.contains("already minimal"));
    }

    #[test]
    fn e12_renders() {
        let out = e12_path_is(true);
        assert!(out.contains("E12"));
        assert!(out.contains("unambiguous"));
    }

    #[test]
    fn e13_renders() {
        let out = e13_bdd_landscape(true);
        assert!(out.contains("E13"));
        assert!(out.contains("kth-from-end"));
    }

    #[test]
    fn e14_renders() {
        let out = e14_parallel(true);
        assert!(out.contains("E14"));
        assert!(out.contains("identical across thread counts: **true**"));
    }
}
