//! E2/E3/E4 — runtime scaling in `n`, `m` and `1/ε`.
//!
//! The paper's complexity bound is `Õ((m²n¹⁰ + m³n⁶)·ε⁻⁴·log²(1/δ))`
//! (Theorem 3), driven by worst-case parameter formulas. The practical
//! profile keeps the same structure with `√n`-scaled error splits, so
//! the *measured* exponents land well below the worst case; each table
//! reports the fitted log-log slope alongside the raw series, plus
//! membership operations (the unit of the paper's accounting).

use crate::table::{fdur, fnum, Table};
use fpras_core::{FprasRun, Params};
use fpras_numeric::stats::fit_power_law;
use fpras_workloads::{random_nfa, RandomNfaConfig};
use rand::{rngs::SmallRng, SeedableRng};
use std::time::Instant;

struct Point {
    x: f64,
    wall: f64,
    ops: u64,
    samples_per_cell: f64,
}

fn run_point(m: usize, n: usize, eps: f64, instance_seed: u64, run_seed: u64) -> Point {
    let config = RandomNfaConfig { states: m, density: 1.6, ..Default::default() };
    let nfa = random_nfa(&config, &mut SmallRng::seed_from_u64(instance_seed));
    let params = Params::practical(eps, 0.1, m, n);
    let mut rng = SmallRng::seed_from_u64(run_seed);
    let start = Instant::now();
    let run = FprasRun::run(&nfa, n, &params, &mut rng).expect("run succeeds");
    let wall = start.elapsed().as_secs_f64();
    Point {
        x: 0.0,
        wall,
        ops: run.stats().membership_ops,
        samples_per_cell: run.stats().samples_per_cell(),
    }
}

fn render(id: &str, claim: &str, x_name: &str, points: Vec<Point>) -> String {
    let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let walls: Vec<f64> = points.iter().map(|p| p.wall).collect();
    let ops: Vec<f64> = points.iter().map(|p| p.ops as f64).collect();
    let mut out = format!("### {id}\n\n{claim}\n\n");
    let mut table = Table::new(vec![x_name, "wall", "membership ops", "samples/cell"]);
    for p in &points {
        table.row(vec![
            fnum(p.x),
            fdur(std::time::Duration::from_secs_f64(p.wall)),
            format!("{}", p.ops),
            fnum(p.samples_per_cell),
        ]);
    }
    out.push_str(&table.render());
    if let Some(fit) = fit_power_law(&xs, &walls) {
        out.push_str(&format!(
            "\nFitted wall-time exponent in {x_name}: **{:.2}** (R² = {:.3}).\n",
            fit.exponent, fit.r_squared
        ));
    }
    if let Some(fit) = fit_power_law(&xs, &ops) {
        out.push_str(&format!(
            "Fitted membership-op exponent in {x_name}: **{:.2}** (R² = {:.3}).\n",
            fit.exponent, fit.r_squared
        ));
    }
    out
}

/// E2: scaling with word length `n` at fixed `m`.
pub fn e2_scaling_n(quick: bool) -> String {
    let m = 8;
    let ns: &[usize] = if quick { &[4, 8, 12] } else { &[4, 6, 8, 12, 16, 20, 24] };
    let points: Vec<Point> = ns
        .iter()
        .map(|&n| {
            let mut p = run_point(m, n, 0.3, 2000, 3000 + n as u64);
            p.x = n as f64;
            p
        })
        .collect();
    render(
        "E2 — runtime vs n (Theorem 3)",
        &format!(
            "Claim: worst-case time grows polynomially in n (paper bound exponent 10 at\n\
             paper constants); practical profile uses the √n error split (DESIGN.md D1).\n\
             Setup: random NFA, m = {m}, ε = 0.3, δ = 0.1."
        ),
        "n",
        points,
    )
}

/// E3: scaling with state count `m` at fixed `n`, including the
/// samples-per-state independence claim (paper §1).
pub fn e3_scaling_m(quick: bool) -> String {
    let n = 8;
    let ms: &[usize] = if quick { &[4, 8, 16] } else { &[4, 6, 8, 12, 16, 24, 32] };
    let points: Vec<Point> = ms
        .iter()
        .map(|&m| {
            let mut p = run_point(m, n, 0.3, 2100 + m as u64, 3100 + m as u64);
            p.x = m as f64;
            p
        })
        .collect();
    let mut out = render(
        "E3 — runtime vs m (Theorem 3, §1)",
        &format!(
            "Claim: time grows as m²..m³; **samples per state stay independent of m**\n\
             (the headline difference vs ACJR's O(m⁷n⁷/ε⁷) per-state budget).\n\
             Setup: random NFAs, n = {n}, ε = 0.3, δ = 0.1."
        ),
        "m",
        points,
    );
    out.push_str(
        "\nThe samples/cell column is the measured check of the m-independence claim —\n\
         it should stay flat across rows (ns is chosen by the profile from n and ε only).\n",
    );
    out
}

/// E4: scaling with accuracy `1/ε`.
pub fn e4_scaling_eps(quick: bool) -> String {
    let m = 8;
    let n = 10;
    let epss: &[f64] = if quick { &[0.5, 0.3, 0.2] } else { &[0.5, 0.4, 0.3, 0.2, 0.15, 0.1] };
    let points: Vec<Point> = epss
        .iter()
        .map(|&eps| {
            let mut p = run_point(m, n, eps, 2200, (3200.0 + 100.0 * eps) as u64);
            p.x = 1.0 / eps;
            p
        })
        .collect();
    render(
        "E4 — runtime vs 1/ε (Theorem 3)",
        &format!(
            "Claim: worst-case time grows as ε⁻⁴ (ε⁻² from trial counts × ε⁻² from sample\n\
             budgets); stored samples grow as ε⁻² (ns = n/ε² in the practical profile).\n\
             Setup: random NFA, m = {m}, n = {n}, δ = 0.1."
        ),
        "1/ε",
        points,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_tables_render() {
        let out = e2_scaling_n(true);
        assert!(out.contains("E2"));
        assert!(out.contains("Fitted wall-time exponent"));
        let out = e3_scaling_m(true);
        assert!(out.contains("samples/cell"));
        let out = e4_scaling_eps(true);
        assert!(out.contains("1/ε"));
    }
}
