//! E10 — `AppUnion` in isolation (Theorem 1).
//!
//! Controlled-overlap set families with known union sizes let us verify
//! the `(1+ε)(1+ε_sz)` sandwich, the error-vs-trials trade-off, and the
//! comparison against the ACJR-style exhaustive-fraction estimator at an
//! equal membership-operation budget.

use crate::table::{fnum, Table};
use fpras_automata::{StateSet, Word};
use fpras_core::sample_set::{SampleEntry, SampleSet};
use fpras_core::{app_union, Params, RunStats, UnionScratch, UnionSetInput};
use fpras_numeric::{stats, ExtFloat};
use rand::{rngs::SmallRng, RngExt, SeedableRng};

/// A synthetic family of `k` sets over the integers with a prescribed
/// pairwise-overlap fraction; returns per-set (samples, exact size) and
/// the exact union size.
struct Family {
    sets: Vec<(SampleSet, u64)>,
    union: u64,
}

fn build_family(k: usize, set_size: u64, overlap: f64, samples: usize, seed: u64) -> Family {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Set i covers [i·stride, i·stride + set_size): stride controls overlap.
    let stride = ((1.0 - overlap) * set_size as f64).round().max(1.0) as u64;
    let member_of = |w: u64| -> Vec<usize> {
        (0..k)
            .filter(|&i| {
                let lo = i as u64 * stride;
                (lo..lo + set_size).contains(&w)
            })
            .collect()
    };
    let union = stride * (k as u64 - 1) + set_size;
    let mut sets = Vec::with_capacity(k);
    for i in 0..k {
        let lo = i as u64 * stride;
        let mut s = SampleSet::empty();
        for _ in 0..samples {
            let w = rng.random_range(lo..lo + set_size);
            s.push(SampleEntry {
                word: Word::from_index(w % (1 << 16), 16, 2),
                reach: StateSet::from_iter(k, member_of(w)),
            });
        }
        sets.push((s, set_size));
    }
    Family { sets, union }
}

fn karp_luby_estimate(family: &Family, eps: f64, seed: u64) -> (f64, u64) {
    let mut params = Params::practical(0.2, 0.05, 8, 8);
    params.rotate_cursor = true;
    let inputs: Vec<UnionSetInput<'_>> = family
        .sets
        .iter()
        .enumerate()
        .map(|(i, (s, sz))| UnionSetInput {
            samples: s,
            size_est: ExtFloat::from_u64(*sz),
            state: i as u32,
        })
        .collect();
    let mut stats = RunStats::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let est = app_union(
        &params,
        eps,
        0.05,
        0.0,
        &inputs,
        family.sets.len(),
        &mut rng,
        &mut UnionScratch::new(),
        &mut stats,
    );
    (est.value.to_f64(), stats.membership_ops)
}

/// The ACJR-style estimator: full pass over every sample list.
fn exhaustive_estimate(family: &Family) -> (f64, u64) {
    let k = family.sets.len();
    let mut total = 0.0;
    let mut ops = 0u64;
    let mut prefix = StateSet::empty(k);
    for (i, (s, sz)) in family.sets.iter().enumerate() {
        let mut outside = 0usize;
        for e in s.iter() {
            ops += 1;
            if !e.reach.intersects(&prefix) {
                outside += 1;
            }
        }
        total += *sz as f64 * outside as f64 / s.len() as f64;
        prefix.insert(i);
    }
    (total, ops)
}

/// E10: Theorem 1 in isolation.
pub fn e10_appunion(quick: bool) -> String {
    let reps = if quick { 5 } else { 20 };
    let mut out = String::new();
    out.push_str(
        "### E10 — AppUnion in isolation (Theorem 1)\n\n\
         Claim: `(Y/t)·Σszᵢ` lands in the `(1+ε)(1+ε_sz)` sandwich w.h.p. with\n\
         `O(k·(1+ε_sz)²·ε⁻²·log(k/δ))` membership calls. Synthetic families of k = 8\n\
         sets, 4096 elements each, overlap-controlled; per-set sample lists of 4000.\n\n",
    );
    let mut table = Table::new(vec![
        "overlap",
        "ε",
        "mean rel-err (KL)",
        "p95 rel-err (KL)",
        "KL ops",
        "rel-err (exhaustive)",
        "exhaustive ops",
    ]);
    for &overlap in &[0.0, 0.5, 0.9] {
        for &eps in &[0.3, 0.1, 0.05] {
            let family = build_family(8, 4096, overlap, 4000, 500 + (overlap * 10.0) as u64);
            let mut errs = Vec::with_capacity(reps);
            let mut ops_total = 0u64;
            for r in 0..reps as u64 {
                let (est, ops) = karp_luby_estimate(&family, eps, 600 + r);
                errs.push((est - family.union as f64).abs() / family.union as f64);
                ops_total += ops;
            }
            let (ex_est, ex_ops) = exhaustive_estimate(&family);
            let ex_err = (ex_est - family.union as f64).abs() / family.union as f64;
            table.row(vec![
                format!("{overlap:.1}"),
                format!("{eps}"),
                fnum(stats::mean(&errs)),
                fnum(stats::percentile(&errs, 95.0)),
                fnum(ops_total as f64 / reps as f64),
                fnum(ex_err),
                fnum(ex_ops as f64),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nThe Karp–Luby column's error tracks ε while its op count tracks ε⁻²; the\n\
         exhaustive estimator is one fixed-cost pass whose accuracy is capped by the\n\
         stored-sample resolution — the trade the two papers make differently.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_union_math() {
        // overlap 0.5, size 100, k = 3: stride 50, union = 200.
        let f = build_family(3, 100, 0.5, 50, 1);
        assert_eq!(f.union, 200);
        // overlap 0, k = 2: disjoint, union = 2 * size.
        let f = build_family(2, 100, 0.0, 50, 2);
        assert_eq!(f.union, 200);
    }

    #[test]
    fn estimators_land_near_truth() {
        let f = build_family(4, 2048, 0.5, 3000, 3);
        let (kl, _) = karp_luby_estimate(&f, 0.1, 9);
        let (ex, _) = exhaustive_estimate(&f);
        let truth = f.union as f64;
        assert!((kl - truth).abs() / truth < 0.15, "kl {kl} vs {truth}");
        assert!((ex - truth).abs() / truth < 0.15, "ex {ex} vs {truth}");
    }

    #[test]
    fn e10_renders() {
        let out = e10_appunion(true);
        assert!(out.contains("E10"));
        assert!(out.contains("exhaustive ops"));
    }
}
