//! E1 — FPRAS accuracy contract (Theorem 3), and
//! E9 — sampler rejection rate (Theorem 2(2)).

use crate::table::{fnum, Table};
use fpras_automata::exact::count_exact;
use fpras_automata::Nfa;
use fpras_core::{FprasRun, Params};
use fpras_numeric::stats;
use fpras_workloads::{families, random_nfa, RandomNfaConfig};
use rand::{rngs::SmallRng, SeedableRng};

/// Named instances with cheap exact counts.
pub fn accuracy_instances() -> Vec<(String, Nfa, usize)> {
    let mut rng = SmallRng::seed_from_u64(1000);
    vec![
        ("all-words".into(), families::all_words(), 14),
        ("ones-mod-5".into(), families::ones_mod_k(5), 14),
        ("contains-11".into(), families::contains_substring(&[1, 1]), 12),
        ("kth-from-end-5".into(), families::kth_symbol_from_end(5), 12),
        ("fibonacci".into(), families::no_consecutive_ones(), 16),
        ("exactly-4-ones".into(), families::exactly_k_ones(4), 14),
        (
            "random-m10".into(),
            random_nfa(
                &RandomNfaConfig { states: 10, density: 1.6, ..Default::default() },
                &mut rng,
            ),
            10,
        ),
    ]
}

/// E1: empirical check of `Pr[|L|/(1+ε) ≤ Est ≤ (1+ε)|L|] ≥ 1−δ`.
pub fn e1_accuracy(quick: bool) -> String {
    let eps = 0.3;
    let delta = 0.1;
    let trials = if quick { 8 } else { 40 };
    let mut out = String::new();
    out.push_str(&format!(
        "### E1 — FPRAS accuracy (Theorem 3)\n\n\
         Claim: estimate within `(1±ε)` of `|L(A_n)|` with probability `≥ 1−δ`.\n\
         Setup: practical profile, ε = {eps}, δ = {delta}, {trials} seeded runs per instance.\n\n"
    ));
    let mut table = Table::new(vec![
        "instance",
        "n",
        "exact",
        "mean est",
        "rel-err p50",
        "rel-err p95",
        "within ε",
        "target",
    ]);
    for (name, nfa, n) in accuracy_instances() {
        let exact = count_exact(&nfa, n).expect("instances are exactly countable").to_f64();
        let params = Params::practical(eps, delta, nfa.num_states(), n);
        let mut errs = Vec::with_capacity(trials);
        let mut ests = Vec::with_capacity(trials);
        for seed in 0..trials as u64 {
            let mut rng = SmallRng::seed_from_u64(7000 + seed);
            let run = FprasRun::run(&nfa, n, &params, &mut rng).expect("run succeeds");
            let est = run.estimate().to_f64();
            ests.push(est);
            errs.push((est - exact).abs() / exact);
        }
        let within = errs.iter().filter(|&&e| e <= eps).count() as f64 / trials as f64;
        table.row(vec![
            name,
            n.to_string(),
            fnum(exact),
            fnum(stats::mean(&ests)),
            fnum(stats::percentile(&errs, 50.0)),
            fnum(stats::percentile(&errs, 95.0)),
            format!("{:.0}%", within * 100.0),
            format!("≥{:.0}%", (1.0 - delta) * 100.0),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// E9: measured ⊥-rate of Algorithm 2 vs the Theorem 2(2) bound.
pub fn e9_rejection(quick: bool) -> String {
    let trials = if quick { 3 } else { 10 };
    let e = std::f64::consts::E;
    let worst_bound = 1.0 - 2.0 / (3.0 * e * e);
    let typical = 1.0 - 2.0 / (3.0 * e);
    let mut out = String::new();
    out.push_str(&format!(
        "### E9 — sampler rejection rate (Theorem 2(2))\n\n\
         Claim: `Pr[sample() = ⊥] ≤ 1 − 2/(3e²) ≈ {worst_bound:.3}` per call; with accurate\n\
         estimates the expected rate is `1 − 2/(3e) ≈ {typical:.3}`.\n\n"
    ));
    let mut table =
        Table::new(vec!["instance", "n", "sample calls", "observed ⊥-rate", "φ>1 rate", "bound"]);
    for (name, nfa, n) in accuracy_instances() {
        let params = Params::practical(0.3, 0.1, nfa.num_states(), n);
        let mut calls = 0u64;
        let mut rejected = 0f64;
        let mut phi = 0f64;
        for seed in 0..trials as u64 {
            let mut rng = SmallRng::seed_from_u64(9100 + seed);
            let run = FprasRun::run(&nfa, n, &params, &mut rng).expect("run succeeds");
            let s = run.stats();
            calls += s.sample_calls;
            rejected += (s.fail_rejected + s.fail_phi_gt_one + s.fail_dead_end) as f64;
            phi += s.fail_phi_gt_one as f64;
        }
        table.row(vec![
            name,
            n.to_string(),
            calls.to_string(),
            fnum(rejected / calls.max(1) as f64),
            fnum(phi / calls.max(1) as f64),
            format!("≤{worst_bound:.3}"),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_produces_table() {
        let out = e1_accuracy(true);
        assert!(out.contains("E1"));
        assert!(out.contains("all-words"));
        assert!(out.contains("within ε"));
    }

    #[test]
    fn e9_produces_table() {
        let out = e9_rejection(true);
        assert!(out.contains("E9"));
        assert!(out.contains("⊥-rate"));
    }
}
