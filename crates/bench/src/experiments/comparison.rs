//! E5 — sample-budget formulas (paper §1's headline comparison),
//! E6 — measured head-to-head vs the ACJR-style baseline, and
//! E11 — crossovers against naive Monte Carlo and exact counting.

use crate::table::{fdur, fnum, Table};
use fpras_automata::exact::{count_exact, Determinization};
use fpras_baselines::{run_counter, AcjrParams, CounterKind};
use fpras_core::Params;
use fpras_numeric::stats::fit_power_law;
use fpras_workloads::{families, random_nfa, RandomNfaConfig};
use rand::{rngs::SmallRng, SeedableRng};

/// E5: analytic per-state sample budgets, ACJR `O((mn/ε)⁷)` vs this
/// paper's `Õ(n⁴/ε²)`, plus the runnable practical profiles.
pub fn e5_sample_budgets(_quick: bool) -> String {
    let mut out = String::new();
    out.push_str(
        "### E5 — samples per (state, level) (paper §1)\n\n\
         Claim: ACJR maintains `O(m⁷n⁷/ε⁷)` samples per state; this paper maintains\n\
         `Õ(n⁴/ε²)` — independent of `m`. Formula values below are the exact constants\n\
         from each paper's Algorithm (log base e); the two right columns are the\n\
         runnable practical profiles used in measured experiments.\n\n",
    );
    let mut table = Table::new(vec![
        "m",
        "n",
        "ε",
        "ACJR κ⁷ (paper)",
        "ours ns (paper)",
        "ACJR ns (practical)",
        "ours ns (practical)",
    ]);
    for &(m, n, eps) in
        &[(8usize, 8usize, 0.3f64), (16, 16, 0.2), (32, 16, 0.2), (16, 32, 0.2), (64, 64, 0.1)]
    {
        let kappa = (m * n) as f64 / eps;
        let acjr_paper = kappa.powi(7);
        let ours_paper = Params::paper(eps, 0.1, m, n).ns as f64;
        let acjr_prac = AcjrParams::practical(eps, 0.1, m, n).ns as f64;
        let ours_prac = Params::practical(eps, 0.1, m, n).ns as f64;
        table.row(vec![
            m.to_string(),
            n.to_string(),
            eps.to_string(),
            fnum(acjr_paper),
            fnum(ours_paper),
            fnum(acjr_prac),
            fnum(ours_prac),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nNote how the paper-profile gap widens with every parameter, and how only the\n\
         `ours` columns are flat in `m` — the structural improvement the paper claims.\n",
    );
    out
}

/// E6: measured ours-vs-ACJR comparison at equal accuracy targets.
pub fn e6_vs_acjr(quick: bool) -> String {
    let n = 10;
    let eps = 0.3;
    let delta = 0.1;
    let trials = if quick { 3 } else { 10 };
    let ms: &[usize] = if quick { &[4, 8] } else { &[4, 8, 12, 16] };
    let mut out = String::new();
    out.push_str(&format!(
        "### E6 — head-to-head vs ACJR-style baseline (paper §1)\n\n\
         Claim: total-time formulas `Õ(m¹⁷n¹⁷ε⁻¹⁴)` (ACJR) vs `Õ((m²n¹⁰+m³n⁶)ε⁻⁴)`\n\
         (ours) — unrunnable at faithful constants, so both run their practical\n\
         profiles here; the measured trend in m is what must match: the ACJR-style\n\
         baseline's cost grows faster because its per-state sample budget scales\n\
         with m. Setup: random NFAs, n = {n}, ε = {eps}, δ = {delta}, {trials} runs.\n\n"
    ));
    let mut table = Table::new(vec![
        "m",
        "ours wall",
        "acjr wall",
        "ours ops",
        "acjr ops",
        "ours err",
        "acjr err",
    ]);
    let mut series: Vec<(f64, f64, f64, f64, f64)> = Vec::new(); // m, ours wall, acjr wall, ours ops, acjr ops
    for &m in ms {
        let config = RandomNfaConfig { states: m, density: 1.6, ..Default::default() };
        let nfa = random_nfa(&config, &mut SmallRng::seed_from_u64(6000 + m as u64));
        let exact = count_exact(&nfa, n).expect("small instances count exactly").to_f64();
        let mut acc = [(0.0f64, 0u64, 0.0f64); 2]; // (wall, ops, err) per method
        for seed in 0..trials as u64 {
            for (slot, kind) in
                [CounterKind::Fpras { threads: 0, batch: true, share: true }, CounterKind::Acjr]
                    .iter()
                    .enumerate()
            {
                let outp = run_counter(kind, &nfa, n, eps, delta, 6100 + seed).expect("run");
                acc[slot].0 += outp.wall.as_secs_f64();
                acc[slot].1 += outp.ops;
                if exact > 0.0 {
                    acc[slot].2 += (outp.estimate.to_f64() - exact).abs() / exact;
                }
            }
        }
        let t = trials as f64;
        series.push((
            m as f64,
            acc[0].0 / t,
            acc[1].0 / t,
            acc[0].1 as f64 / t,
            acc[1].1 as f64 / t,
        ));
        table.row(vec![
            m.to_string(),
            fdur(std::time::Duration::from_secs_f64(acc[0].0 / t)),
            fdur(std::time::Duration::from_secs_f64(acc[1].0 / t)),
            fnum(acc[0].1 as f64 / t),
            fnum(acc[1].1 as f64 / t),
            fnum(acc[0].2 / t),
            fnum(acc[1].2 / t),
        ]);
    }
    out.push_str(&table.render());
    let ms_f: Vec<f64> = series.iter().map(|s| s.0).collect();
    let fits = [
        ("ours wall", series.iter().map(|s| s.1).collect::<Vec<_>>()),
        ("acjr wall", series.iter().map(|s| s.2).collect::<Vec<_>>()),
        ("ours ops", series.iter().map(|s| s.3).collect::<Vec<_>>()),
        ("acjr ops", series.iter().map(|s| s.4).collect::<Vec<_>>()),
    ];
    out.push('\n');
    for (name, ys) in fits {
        if let Some(fit) = fit_power_law(&ms_f, &ys) {
            out.push_str(&format!(
                "Fitted {name} exponent in m: **{:.2}** (R² = {:.3}).\n",
                fit.exponent, fit.r_squared
            ));
        }
    }
    out.push_str(
        "\nThe claim under test is the *growth* gap: the ACJR-style per-state budget\n\
         scales with m, so its cost exponent in m must exceed ours.\n",
    );
    out
}

/// E11: where each method lives and dies — dense vs thin vs
/// determinization-blow-up instances.
pub fn e11_crossover(quick: bool) -> String {
    let mut out = String::new();
    out.push_str(
        "### E11 — crossovers vs naive MC and exact counting (paper §1 motivation)\n\n\
         Dense languages: naive Monte Carlo is unbeatable. Thin languages: naive MC\n\
         returns 0 forever. Determinization-hostile NFAs: exact counting blows up in m\n\
         while the FPRAS stays polynomial. All three regimes in one table; `—` marks\n\
         failure (naive: zero hits; exact: subset-cap exceeded).\n\n",
    );
    let k_blow = if quick { 14 } else { 20 };
    let instances = vec![
        ("dense (all-words)", families::all_words(), 20usize),
        ("thin (single word)", families::thin_chain(20), 20),
        ("blow-up (kth-from-end)", families::kth_symbol_from_end(k_blow), k_blow + 4),
    ];
    let naive_trials = if quick { 20_000 } else { 200_000 };
    let mut table = Table::new(vec![
        "instance",
        "n",
        "exact",
        "fpras est",
        "fpras wall",
        "naive est",
        "naive wall",
        "exact-dp wall",
        "dp width",
    ]);
    for (name, nfa, n) in instances {
        let fp = run_counter(
            &CounterKind::Fpras { threads: 0, batch: true, share: true },
            &nfa,
            n,
            0.3,
            0.1,
            11_000,
        )
        .expect("fpras");
        let nv =
            run_counter(&CounterKind::NaiveMc { trials: naive_trials }, &nfa, n, 0.3, 0.1, 11_001)
                .expect("naive");
        let start = std::time::Instant::now();
        let dp = Determinization::build_capped(&nfa, n, 1 << 18);
        let dp_wall = start.elapsed();
        let (exact_str, dp_wall_str, width_str) = match &dp {
            Ok(d) => (fnum(d.slice_count(n).to_f64()), fdur(dp_wall), d.max_width().to_string()),
            Err(_) => ("—".to_string(), "—".to_string(), format!(">{}", 1 << 18)),
        };
        let naive_est = if nv.estimate.is_zero() {
            "— (0 hits)".to_string()
        } else {
            fnum(nv.estimate.to_f64())
        };
        table.row(vec![
            name.to_string(),
            n.to_string(),
            exact_str,
            fnum(fp.estimate.to_f64()),
            fdur(fp.wall),
            naive_est,
            fdur(nv.wall),
            dp_wall_str,
            width_str,
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_renders() {
        let out = e5_sample_budgets(true);
        assert!(out.contains("E5"));
        assert!(out.contains("κ⁷"));
    }

    #[test]
    fn e6_renders() {
        let out = e6_vs_acjr(true);
        assert!(out.contains("acjr wall"));
    }

    #[test]
    fn e11_renders() {
        let out = e11_crossover(true);
        assert!(out.contains("thin (single word)"));
        assert!(out.contains("— (0 hits)"));
    }
}
