//! E7 — generator uniformity (Theorem 2(1) / invariant Inv-2), and
//! E8 — ablations of the practical-profile deviations (DESIGN.md D3–D5).

use crate::table::{fdur, fnum, Table};
use fpras_automata::exact::count_exact;
use fpras_automata::{ExactSampler, Nfa};
use fpras_core::{CursorPolicy, FprasRun, Params, UniformGenerator};
use fpras_numeric::stats::tv_to_uniform;
use fpras_workloads::families;
use rand::{rngs::SmallRng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

fn tv_of_generator(nfa: &Nfa, n: usize, params: &Params, draws: usize, seed: u64) -> (f64, f64) {
    let support = count_exact(nfa, n).expect("small instance").to_u64().expect("fits u64") as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let run = FprasRun::run(nfa, n, params, &mut rng).expect("run succeeds");
    let mut generator = UniformGenerator::new(run);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let start = Instant::now();
    for w in generator.generate_many(&mut rng, draws) {
        *counts.entry(w.to_index(2)).or_insert(0) += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    (tv_to_uniform(&counts, support), wall)
}

/// E7: total-variation distance of the almost-uniform generator from the
/// uniform distribution over `L(A_n)`, with an exact-sampler control.
pub fn e7_uniformity(quick: bool) -> String {
    let draws = if quick { 4_000 } else { 30_000 };
    let mut out = String::new();
    out.push_str(&format!(
        "### E7 — generator uniformity (Theorem 2(1), Inv-2)\n\n\
         Claim: conditioned on success, every word of `L(A_n)` is emitted with equal\n\
         probability `γ₀`; the sample multisets are close to iid-uniform in total\n\
         variation. Measured: empirical TV distance to uniform over {draws} draws; the\n\
         exact-sampler row is the statistical noise floor at this sample size.\n\n"
    ));
    let instances: Vec<(&str, Nfa, usize)> = vec![
        ("contains-11", families::contains_substring(&[1, 1]), 7),
        ("ones-mod-3", families::ones_mod_k(3), 8),
        ("kth-from-end-3", families::kth_symbol_from_end(3), 8),
    ];
    let mut table =
        Table::new(vec!["instance", "n", "|L|", "TV (fpras gen)", "TV (exact sampler)", "draws"]);
    for (name, nfa, n) in instances {
        let support = count_exact(&nfa, n).unwrap().to_u64().unwrap() as usize;
        let params = Params::practical(0.25, 0.1, nfa.num_states(), n);
        let (tv, _) = tv_of_generator(&nfa, n, &params, draws, 8200);
        // Control: the exact sampler's empirical TV at the same draw count.
        let exact_sampler = ExactSampler::new(&nfa, n).expect("small instance");
        let mut rng = SmallRng::seed_from_u64(8300);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for w in exact_sampler.sample_many(&mut rng, draws) {
            *counts.entry(w.to_index(2)).or_insert(0) += 1;
        }
        let tv_exact = tv_to_uniform(&counts, support);
        table.row(vec![
            name.to_string(),
            n.to_string(),
            support.to_string(),
            fnum(tv),
            fnum(tv_exact),
            draws.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// E8: ablations — memoization (D4), cursor rotation (D3), the β split
/// (D5) and the cursor policy (D3), measured on accuracy, TV and time.
pub fn e8_ablations(quick: bool) -> String {
    let nfa = families::contains_substring(&[1, 1]);
    let n = 9;
    let exact = count_exact(&nfa, n).unwrap().to_f64();
    let trials = if quick { 4 } else { 12 };
    let draws = if quick { 3_000 } else { 15_000 };
    let mut out = String::new();
    out.push_str(&format!(
        "### E8 — ablations of the practical-profile deviations (DESIGN.md D3–D5)\n\n\
         Instance: contains-11, n = {n}, ε = 0.25, δ = 0.1, {trials} runs per variant;\n\
         TV measured with {draws} generator draws.\n\n"
    ));
    let base = Params::practical(0.25, 0.1, nfa.num_states(), n);
    let variants: Vec<(&str, Params)> = vec![
        ("practical (all on)", base.clone()),
        ("no memoization", {
            let mut p = base.clone().into_custom();
            p.memoize_unions = false;
            p
        }),
        ("no cursor rotation", {
            let mut p = base.clone().into_custom();
            p.rotate_cursor = false;
            p
        }),
        ("no β split (β_sample = β_count)", {
            let mut p = base.clone().into_custom();
            p.beta_sample = p.beta_count;
            p
        }),
        ("paper cursor (break)", {
            let mut p = base.clone().into_custom();
            p.cursor = CursorPolicy::PaperBreak;
            p
        }),
        ("no dead-state trimming", {
            let mut p = base.clone().into_custom();
            p.trim_dead = false;
            p
        }),
    ];
    let mut table = Table::new(vec![
        "variant",
        "mean rel-err",
        "TV to uniform",
        "mean wall",
        "mean membership ops",
    ]);
    for (name, params) in variants {
        let mut errs = 0.0;
        let mut wall = 0.0;
        let mut ops = 0u64;
        for seed in 0..trials as u64 {
            let mut rng = SmallRng::seed_from_u64(8400 + seed);
            let start = Instant::now();
            let run = FprasRun::run(&nfa, n, &params, &mut rng).expect("run succeeds");
            wall += start.elapsed().as_secs_f64();
            ops += run.stats().membership_ops;
            errs += (run.estimate().to_f64() - exact).abs() / exact;
        }
        let (tv, _) = tv_of_generator(&nfa, n, &params, draws, 8500);
        let t = trials as f64;
        table.row(vec![
            name.to_string(),
            fnum(errs / t),
            fnum(tv),
            fdur(std::time::Duration::from_secs_f64(wall / t)),
            fnum(ops as f64 / t),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading the rows: memoization is the big speed lever (D4); the β split (D5)\n\
         buys ~3x ops at no accuracy cost; the *paper cursor* row collapses by design —\n\
         Algorithm 1's `break` path assumes the paper-regime precondition `ns ≥ thresh`,\n\
         which practical sample budgets deliberately violate; cyclic reuse (D3) is\n\
         exactly the engineering that removes that precondition. Under `Params::paper`\n\
         the break path is the low-probability event the analysis assumes.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_renders() {
        let out = e7_uniformity(true);
        assert!(out.contains("E7"));
        assert!(out.contains("TV (exact sampler)"));
    }

    #[test]
    fn e8_renders() {
        let out = e8_ablations(true);
        assert!(out.contains("no memoization"));
        assert!(out.contains("paper cursor"));
    }
}
