//! Regenerates the EXPERIMENTS.md tables.
//!
//! Usage:
//! ```text
//! experiments [--quick] [--json [PATH]] [--scaling-smoke] [e1 e2 … | all]
//! ```
//! With no selector, runs the full suite. `--quick` shrinks trial counts
//! for smoke testing; EXPERIMENTS.md numbers come from the default mode.
//! `--json` additionally writes the machine-readable counter matrix
//! (`BENCH_counter.json` unless a path follows the flag) and skips the
//! Markdown suite when no experiment selector is given alongside it.
//! `--scaling-smoke` runs only the work-stealing scaling guard (D10):
//! one wide fixture at `threads = 1` vs `threads = 4`, exiting nonzero
//! when multi-threading has regressed to flat scaling (skipped on
//! single-CPU hosts, where the comparison is physically vacuous).

use fpras_bench::registry;
use std::time::Instant;

/// True for arguments that select experiments (`e<digits>` or `all`),
/// as opposed to a `--json` path operand like `estimates.json`.
fn is_selector(arg: &str) -> bool {
    arg == "all"
        || (arg.len() > 1 && arg.starts_with('e') && arg[1..].chars().all(|c| c.is_ascii_digit()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut json: Option<Option<String>> = None;
    let mut scaling = false;
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {}
            "--scaling-smoke" => scaling = true,
            "--json" => {
                // Optional path operand: the next arg, unless it is a
                // flag or an experiment selector.
                let path =
                    args.get(i + 1).filter(|a| !a.starts_with("--") && !is_selector(a)).cloned();
                if path.is_some() {
                    i += 1;
                }
                json = Some(path);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }

    if scaling {
        match fpras_bench::scaling_smoke(quick, 42) {
            Ok(msg) => {
                println!("scaling smoke: {msg}");
                return;
            }
            Err(msg) => {
                eprintln!("scaling smoke FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &json {
        match fpras_bench::write_counter_json(path.as_deref(), quick, 42) {
            Ok(resolved) => eprintln!("wrote counter matrix to {resolved}"),
            Err(e) => {
                eprintln!("cannot write counter JSON: {e}");
                std::process::exit(1);
            }
        }
        if selected.is_empty() {
            return;
        }
    }

    let run_all = selected.is_empty() || selected.iter().any(|s| s == "all");

    let suite = registry();
    let chosen: Vec<_> =
        suite.iter().filter(|e| run_all || selected.iter().any(|s| s == e.id)).collect();
    if chosen.is_empty() {
        eprintln!(
            "unknown experiment selector; available: {}",
            suite.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    }

    println!("# Experiment run ({} mode)\n", if quick { "quick" } else { "full" });
    let total = Instant::now();
    for e in chosen {
        let start = Instant::now();
        let output = (e.run)(quick);
        println!("{output}");
        println!("\n_{} finished in {:.1?}_\n", e.id, start.elapsed());
    }
    println!("\n_Total: {:.1?}_", total.elapsed());
}
