//! Regenerates the EXPERIMENTS.md tables.
//!
//! Usage:
//! ```text
//! experiments [--quick] [e1 e2 … | all]
//! ```
//! With no selector, runs the full suite. `--quick` shrinks trial counts
//! for smoke testing; EXPERIMENTS.md numbers come from the default mode.

use fpras_bench::registry;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<String> = args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
    let run_all = selected.is_empty() || selected.iter().any(|s| s == "all");

    let suite = registry();
    let chosen: Vec<_> = suite
        .iter()
        .filter(|e| run_all || selected.iter().any(|s| s == e.id))
        .collect();
    if chosen.is_empty() {
        eprintln!(
            "unknown experiment selector; available: {}",
            suite.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    }

    println!("# Experiment run ({} mode)\n", if quick { "quick" } else { "full" });
    let total = Instant::now();
    for e in chosen {
        let start = Instant::now();
        let output = (e.run)(quick);
        println!("{output}");
        println!("\n_{} finished in {:.1?}_\n", e.id, start.elapsed());
    }
    println!("\n_Total: {:.1?}_", total.elapsed());
}
