//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the slice of `rand` 0.9 it actually uses: the [`Rng`]
//! / [`RngExt`] generation traits, [`SeedableRng`], and
//! [`rngs::SmallRng`] (xoshiro256++, the same algorithm `rand` uses for
//! `SmallRng` on 64-bit targets, with the same SplitMix64
//! `seed_from_u64` expansion). Seeded streams are stable across
//! platforms and releases — the FPRAS determinism tests depend on that.

use std::ops::{Range, RangeInclusive};

/// Uniform generation over a range type. Implemented for `Range` and
/// `RangeInclusive` of the integer types the workspace samples, plus
/// `Range<f64>`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range. Panics on empty ranges.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a "standard" uniform distribution for [`RngExt::random`].
pub trait StandardRandom {
    /// Draws one value: uniform over the full domain for integers,
    /// uniform in `[0, 1)` for floats, a fair coin for `bool`.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The core generation trait: a source of uniform `u64`s. Used as the
/// generic bound throughout the workspace (`R: Rng + ?Sized`); the
/// convenience methods live on [`RngExt`] so call sites import that
/// explicitly (`use rand::{Rng, RngExt}`).
pub trait Rng {
    /// The raw source: one uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// One uniform 32-bit word (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Derived generation methods (`random`, `random_range`, `random_bool`),
/// blanket-implemented for every [`Rng`]. Not object-safe — the
/// workspace never uses `dyn Rng`.
pub trait RngExt: Rng {
    /// Draws from the standard distribution of `T`.
    fn random<T: StandardRandom>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws uniformly from `range`; panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p = {p} out of [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: advances `*state` and returns the next output.
/// Used to expand small seeds into full generator state (the same
/// construction `rand` uses in `SeedableRng::seed_from_u64`).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// algorithm upstream `rand` backs `SmallRng` with on 64-bit
    /// platforms. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Builds from raw state; at least one word must be non-zero.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng::from_state(s)
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform `u64` below `n` (Lemire's multiply-with-rejection; unbiased).
#[inline]
fn u64_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = (rng.next_u64() as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Uniform `u128` below `n` (bitmask rejection; unbiased).
#[inline]
fn u128_below<R: Rng + ?Sized>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n > 0);
    if n <= u64::MAX as u128 {
        return u64_below(rng, n as u64) as u128;
    }
    let mask = u128::MAX >> (n - 1).leading_zeros();
    loop {
        let x = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) & mask;
        if x < n {
            return x;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                // Width modulo 2^128 is exact for every source type.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(u128_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full 128-bit domain.
                    return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t;
                }
                start.wrapping_add(u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let unit = f64::standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardRandom for $t {
            #[inline]
            fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardRandom for bool {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl StandardRandom for f64 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardRandom for f32 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::RngExt as _;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..=3);
            assert!(y <= 3);
            let z: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&z));
            let s: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn unit_f64_is_uniformish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..100u64)
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = takes_generic(&mut rng);
        let r = &mut rng;
        let _ = takes_generic(r);
    }
}
