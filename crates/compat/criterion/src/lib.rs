//! Vendored, dependency-free subset of the `criterion` crate API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the slice of `criterion` its benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, [`BenchmarkId`], and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — per benchmark it runs a short
//! warm-up, then `sample_size` timed samples, and prints min / mean /
//! max wall time per iteration. There are no statistics, plots, or
//! baselines; the experiment harness (`fpras-bench --bin experiments`)
//! is the source of recorded numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration.
        let _ = routine();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Display, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (formatting separator only).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
        eprintln!();
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(name: &str, sample_size: usize, f: F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("{name}: no samples (closure never called iter)");
        return;
    }
    let min = b.samples.iter().min().expect("non-empty");
    let max = b.samples.iter().max().expect("non-empty");
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    eprintln!(
        "{name}: min {min:.2?} / mean {mean:.2?} / max {max:.2?} over {} samples",
        b.samples.len()
    );
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 { 10 } else { self.default_sample_size };
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    /// Sets the default sample size for subsequent groups.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let sample_size = if self.default_sample_size == 0 { 10 } else { self.default_sample_size };
        run_one(&id.to_string(), sample_size, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
        group.bench_with_input(BenchmarkId::new("h", 7), &7, |b, &x| b.iter(|| assert_eq!(x, 7)));
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }
}
