//! Vendored, dependency-free subset of the `proptest` crate API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the slice of `proptest` it uses: the [`proptest!`]
//! macro (both `pat in strategy` and `name: Type` argument forms),
//! range/tuple/`collection::vec`/[`any`] strategies, `prop_assert!` /
//! `prop_assert_eq!`, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a fixed seed (so
//! failures reproduce deterministically) and there is **no shrinking** —
//! a failing case panics with the generated inputs unreduced.

use rand::{rngs::SmallRng, SeedableRng};
use std::ops::{Range, RangeFrom, RangeInclusive};

/// The RNG strategies draw from.
pub type TestRng = SmallRng;

/// Test-runner configuration (only `cases` is supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::RngExt;
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A constant strategy (always yields a clone of its value).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngExt;
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngExt;
        rng.random::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngExt;
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag: f64 = rng.random_range(-300.0..300.0);
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag)
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `sizes`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "collection::vec: empty size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            use rand::RngExt;
            let len = rng.random_range(self.sizes.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking in this vendored subset).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// Supports the two upstream argument forms used in this workspace:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn from_strategies(x in 0u64..100, v in proptest::collection::vec(0u8..2, 1..5)) { … }
///     #[test]
///     fn from_types(word: u16) { … }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::__new_test_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs =
                    $crate::__fmt_inputs(&[$((stringify!($pat), format!("{:?}", $pat))),+]);
                let run = || -> () { $body };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    Ok(()) => {}
                    Err(payload) => {
                        eprintln!(
                            "property {} failed at case {case}/{}; inputs: {inputs}",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:ident : $ty:ty),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $crate::__proptest_items! {
            ($config)
            $(#[$meta])*
            fn $name($($pat in $crate::any::<$ty>()),+) $body
            $($rest)*
        }
    };
}

#[doc(hidden)]
pub fn __new_test_rng(name: &str) -> TestRng {
    // Deterministic per-property stream: failures always reproduce.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

#[doc(hidden)]
pub fn __fmt_inputs(inputs: &[(&str, String)]) -> String {
    inputs.iter().map(|(k, v)| format!("{k} = {v}")).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Range strategies respect bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..4, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.5..2.0).contains(&f));
        }

        /// Tuple and vec strategies compose.
        #[test]
        fn composite_strategies(
            pairs in crate::collection::vec((0u32..6, 0u8..2), 1..30),
            open in 0u64..,
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 30);
            for (a, b) in &pairs {
                prop_assert!(*a < 6 && *b < 2);
            }
            let _ = open;
        }

        /// Typed-argument form draws arbitrary values.
        #[test]
        fn typed_args(word: u16, flag: bool) {
            prop_assert_eq!(u32::from(word) & 0xFFFF, u32::from(word));
            prop_assert!(flag == (flag as u8 == 1));
        }
    }

    #[test]
    fn deterministic_per_property() {
        let mut a = crate::__new_test_rng("p");
        let mut b = crate::__new_test_rng("p");
        use rand::{Rng, RngExt};
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.random_range(0..100u64), b.random_range(0..100u64));
    }
}
