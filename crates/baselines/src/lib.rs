//! Baseline #NFA counters for head-to-head comparison with the FPRAS.
//!
//! * [`acjr`] — an ACJR-style FPRAS (the PODS'19/JACM'21 scheme this
//!   paper improves on): exhaustive-fraction union estimation and
//!   `κ^a`-sized per-state sample sets;
//! * [`naive`] — uniform-word Monte Carlo (unbiased, collapses on thin
//!   languages);
//! * [`path_is`] — unbiased importance sampling over accepting paths
//!   (zero variance on unambiguous automata, exponential variance on
//!   ambiguous ones — the cheap estimator the FPRAS has to beat);
//! * exact methods re-exported from `fpras-automata` (determinization DP,
//!   DFA counting, brute force) and `fpras-bdd` behind the unified
//!   [`facade`].
//!
//! Experiments E5/E6/E10/E11/E12 in EXPERIMENTS.md are built on this
//! crate.

pub mod acjr;
pub mod facade;
pub mod naive;
pub mod path_is;

pub use acjr::{AcjrParams, AcjrRun};
pub use facade::{run_counter, CounterError, CounterKind, CounterOutput};
pub use naive::{naive_mc, trials_for, NaiveResult};
pub use path_is::{path_importance_sampling, PathIsResult, PathSampler};
