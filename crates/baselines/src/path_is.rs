//! Unbiased importance sampling over accepting paths.
//!
//! Counting accepting *paths* of length `n` is easy (a linear DP); what
//! makes #NFA hard is that a word may have many accepting runs, so the
//! path count overcounts `|L(A_n)|` by each word's ambiguity. This
//! baseline turns that observation into the classic "Knuth-style"
//! estimator:
//!
//! 1. sample a uniformly random accepting path (backwards through the
//!    path-count DP),
//! 2. take its word `w` and compute `amb(w)` = number of accepting runs
//!    of `w` (an exact per-word DP, `O(n·|Δ|)`),
//! 3. output `X = P / amb(w)` where `P` is the total number of accepting
//!    paths.
//!
//! Since the sampled word appears with probability `amb(w)/P`,
//! `E[X] = Σ_w amb(w)/P · P/amb(w) = |L(A_n)|` — *exactly* unbiased, with
//! zero variance on unambiguous automata. The catch, and the reason the
//! paper's FPRAS is needed, is the variance: it scales with the spread of
//! `P/amb(w)` across words, which is exponential for automata whose
//! ambiguity varies wildly between words (experiment E12 measures the
//! blow-up on the `redundant_copies` and `overlapping_union` workloads).
//! The FPRAS's guarantee holds for *every* NFA; this estimator's
//! practical accuracy is instance-dependent.

use fpras_automata::{Nfa, StateId, Word};
use fpras_numeric::{BigUint, ExtFloat};
use rand::{Rng, RngExt};

/// Result of a path-importance-sampling estimation.
#[derive(Debug, Clone)]
pub struct PathIsResult {
    /// Mean of the per-trial estimates (unbiased for `|L(A_n)|`).
    pub estimate: ExtFloat,
    /// Number of trials.
    pub trials: u64,
    /// Empirical relative standard error of the mean — the honest
    /// self-reported accuracy (0 on unambiguous automata).
    pub rel_std_error: f64,
    /// Largest per-word ambiguity observed across the trials.
    pub max_ambiguity: f64,
}

/// Precomputed path-count DP for sampling uniformly random accepting
/// paths of one `(nfa, n)` slice.
pub struct PathSampler<'a> {
    nfa: &'a Nfa,
    n: usize,
    /// `fwd[ℓ][q]` = number of length-`ℓ` paths from the initial state
    /// to `q`.
    fwd: Vec<Vec<BigUint>>,
    /// Total accepting paths `P = Σ_{q ∈ F} fwd[n][q]`.
    total: BigUint,
}

impl<'a> PathSampler<'a> {
    /// Builds the DP; returns `None` when there are no accepting paths
    /// (equivalently `L(A_n) = ∅`).
    pub fn new(nfa: &'a Nfa, n: usize) -> Option<Self> {
        let m = nfa.num_states();
        let k = nfa.alphabet().size() as u8;
        let mut fwd = Vec::with_capacity(n + 1);
        let mut cur = vec![BigUint::zero(); m];
        cur[nfa.initial() as usize] = BigUint::one();
        fwd.push(cur);
        for ell in 1..=n {
            let mut next = vec![BigUint::zero(); m];
            for (q, c) in fwd[ell - 1].iter().enumerate() {
                if c.is_zero() {
                    continue;
                }
                for sym in 0..k {
                    for &t in nfa.successors(q as StateId, sym) {
                        next[t as usize] += c;
                    }
                }
            }
            fwd.push(next);
        }
        let total: BigUint = fwd[n]
            .iter()
            .enumerate()
            .filter(|(q, _)| nfa.is_accepting(*q as StateId))
            .map(|(_, c)| c.clone())
            .sum();
        if total.is_zero() {
            return None;
        }
        Some(PathSampler { nfa, n, fwd, total })
    }

    /// Total number of accepting paths `P`.
    pub fn total_paths(&self) -> &BigUint {
        &self.total
    }

    /// Draws the word of a uniformly random accepting path.
    pub fn sample_word<R: Rng + ?Sized>(&self, rng: &mut R) -> Word {
        // Pick the end state weighted by fwd[n][q] over accepting states.
        let mut q = self.pick_weighted(
            rng,
            (0..self.nfa.num_states() as StateId).filter(|&q| self.nfa.is_accepting(q)),
            |q| &self.fwd[self.n][q as usize],
        );
        // Walk backwards: at level ℓ choose (pred, sym) ∝ fwd[ℓ-1][pred].
        let mut rev_syms = Vec::with_capacity(self.n);
        for ell in (1..=self.n).rev() {
            let k = self.nfa.alphabet().size() as u8;
            let choices =
                (0..k).flat_map(|sym| self.nfa.predecessors(q, sym).iter().map(move |&p| (p, sym)));
            let (p, sym) =
                self.pick_weighted(rng, choices, |(p, _)| &self.fwd[ell - 1][p as usize]);
            rev_syms.push(sym);
            q = p;
        }
        Word::from_reversed(rev_syms)
    }

    /// Number of accepting runs of `word` — the ambiguity `amb(w)`.
    pub fn multiplicity(&self, word: &Word) -> BigUint {
        let m = self.nfa.num_states();
        let mut cur = vec![BigUint::zero(); m];
        cur[self.nfa.initial() as usize] = BigUint::one();
        for &sym in word.symbols() {
            let mut next = vec![BigUint::zero(); m];
            for (q, c) in cur.iter().enumerate() {
                if c.is_zero() {
                    continue;
                }
                for &t in self.nfa.successors(q as StateId, sym) {
                    next[t as usize] += c;
                }
            }
            cur = next;
        }
        cur.iter()
            .enumerate()
            .filter(|(q, _)| self.nfa.is_accepting(*q as StateId))
            .map(|(_, c)| c.clone())
            .sum()
    }

    /// Weighted choice among `items` by BigUint weights; weights are
    /// compared through 53-bit ratios, which is the same tolerance the
    /// exact sampler uses.
    fn pick_weighted<R, I, T, W>(&self, rng: &mut R, items: I, weight: W) -> T
    where
        R: Rng + ?Sized,
        I: Iterator<Item = T>,
        T: Copy,
        W: Fn(T) -> &'a BigUint,
    {
        let collected: Vec<T> = items.collect();
        let weights: Vec<&BigUint> = collected.iter().map(|&t| weight(t)).collect();
        let total: BigUint = weights.iter().map(|w| (*w).clone()).sum();
        debug_assert!(!total.is_zero(), "weighted choice over zero-mass support");
        let mut target = rng.random::<f64>();
        for (&item, w) in collected.iter().zip(&weights) {
            let p = w.ratio(&total);
            if target < p {
                return item;
            }
            target -= p;
        }
        // Rounding left us past the end; the last positive-weight item.
        *collected
            .iter()
            .zip(&weights)
            .rev()
            .find(|(_, w)| !w.is_zero())
            .expect("support is non-empty")
            .0
    }
}

/// Runs `trials` path-importance-sampling trials.
///
/// Returns `None` when the slice is empty (the estimator then has
/// nothing to sample — and correctly reports 0 by convention would hide
/// that distinction, so the caller decides).
///
/// ```
/// use fpras_automata::{Alphabet, NfaBuilder};
/// use fpras_baselines::path_importance_sampling;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// // Deterministic automaton (all words): unambiguous, so every trial
/// // returns the exact count and the reported error is zero.
/// let mut b = NfaBuilder::new(Alphabet::binary());
/// let q = b.add_state();
/// b.set_initial(q);
/// b.add_accepting(q);
/// b.add_transition(q, 0, q);
/// b.add_transition(q, 1, q);
/// let nfa = b.build().unwrap();
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let r = path_importance_sampling(&nfa, 12, 10, &mut rng).unwrap();
/// assert_eq!(r.estimate.to_f64(), 4096.0);
/// assert_eq!(r.rel_std_error, 0.0);
/// ```
pub fn path_importance_sampling<R: Rng + ?Sized>(
    nfa: &Nfa,
    n: usize,
    trials: u64,
    rng: &mut R,
) -> Option<PathIsResult> {
    assert!(trials > 0, "at least one trial required");
    let sampler = PathSampler::new(nfa, n)?;
    let total = ExtFloat::from_biguint(sampler.total_paths());
    let mut sum = ExtFloat::ZERO;
    let mut sum_sq = ExtFloat::ZERO;
    let mut max_ambiguity = 1.0f64;
    for _ in 0..trials {
        let word = sampler.sample_word(rng);
        let amb = sampler.multiplicity(&word);
        debug_assert!(!amb.is_zero(), "sampled word must have an accepting run");
        let amb_f = ExtFloat::from_biguint(&amb);
        max_ambiguity = max_ambiguity.max(amb.to_f64());
        let x = total / amb_f;
        sum = sum + x;
        sum_sq = sum_sq + x * x;
    }
    let inv_t = 1.0 / trials as f64;
    let mean = sum.scale(inv_t);
    let mean_sq = sum_sq.scale(inv_t);
    // var = E[X²] − E[X]²; saturating: tiny negatives from rounding → 0.
    let var = mean_sq.saturating_sub(&(mean * mean));
    let rel_std_error = if mean.is_zero() {
        0.0
    } else {
        let sem = var.scale(inv_t); // variance of the mean
        (sem.ratio(&(mean * mean))).max(0.0).sqrt()
    };
    Some(PathIsResult { estimate: mean, trials, rel_std_error, max_ambiguity })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpras_automata::exact::{count_exact, count_paths};
    use fpras_automata::{Alphabet, NfaBuilder};
    use rand::{rngs::SmallRng, SeedableRng};

    fn ends_in_1() -> Nfa {
        let mut b = NfaBuilder::new(Alphabet::binary());
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q1);
        for sym in [0, 1] {
            b.add_transition(q0, sym, q0);
        }
        b.add_transition(q0, 1, q1);
        b.build().unwrap()
    }

    fn contains_11() -> Nfa {
        let mut b = NfaBuilder::new(Alphabet::binary());
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q2);
        b.add_transition(q0, 0, q0);
        b.add_transition(q0, 1, q0);
        b.add_transition(q0, 1, q1);
        b.add_transition(q1, 1, q2);
        b.add_transition(q2, 0, q2);
        b.add_transition(q2, 1, q2);
        b.build().unwrap()
    }

    #[test]
    fn total_paths_matches_path_dp() {
        for (nfa, n) in [(ends_in_1(), 9), (contains_11(), 11)] {
            let sampler = PathSampler::new(&nfa, n).unwrap();
            assert_eq!(sampler.total_paths(), &count_paths(&nfa, n));
        }
    }

    #[test]
    fn empty_slice_has_no_sampler() {
        let nfa = contains_11();
        assert!(PathSampler::new(&nfa, 1).is_none(), "no length-1 word contains 11");
        assert!(path_importance_sampling(&nfa, 0, 10, &mut SmallRng::seed_from_u64(0)).is_none());
    }

    #[test]
    fn unambiguous_automaton_has_zero_variance() {
        // ends_in_1 is unambiguous: each accepted word has one accepting
        // run, so every trial returns exactly |L(A_n)|.
        let nfa = ends_in_1();
        let n = 12;
        let exact = count_exact(&nfa, n).unwrap().to_f64();
        let mut rng = SmallRng::seed_from_u64(21);
        let r = path_importance_sampling(&nfa, n, 50, &mut rng).unwrap();
        assert!((r.estimate.to_f64() - exact).abs() < 1e-6 * exact);
        assert!(r.rel_std_error < 1e-9, "rse {}", r.rel_std_error);
        assert_eq!(r.max_ambiguity, 1.0);
    }

    #[test]
    fn ambiguous_automaton_converges_but_noisily() {
        let nfa = contains_11();
        let n = 12;
        let exact = count_exact(&nfa, n).unwrap().to_f64();
        let mut rng = SmallRng::seed_from_u64(22);
        let r = path_importance_sampling(&nfa, n, 40_000, &mut rng).unwrap();
        let err = (r.estimate.to_f64() - exact).abs() / exact;
        assert!(err < 0.05, "err {err} (est {}, exact {exact})", r.estimate);
        assert!(r.rel_std_error > 1e-4, "ambiguity must show up as variance");
        assert!(r.max_ambiguity > 1.0);
    }

    #[test]
    fn multiplicity_counts_accepting_runs() {
        let nfa = contains_11();
        let sampler = PathSampler::new(&nfa, 4).unwrap();
        let a = nfa.alphabet().clone();
        // "0110": the only accepting run goes through the single "11".
        assert_eq!(sampler.multiplicity(&Word::parse("0110", &a).unwrap()).to_u64(), Some(1));
        // "1111": runs may switch to q1 at positions 1, 2 or 3... exact
        // value must match a hand count via the path DP restricted to the
        // word; cross-check against summing over all words instead.
        let total: BigUint =
            (0..16u64).map(|idx| sampler.multiplicity(&Word::from_index(idx, 4, 2))).sum();
        assert_eq!(&total, sampler.total_paths());
    }

    #[test]
    fn sampled_words_are_accepted() {
        let nfa = contains_11();
        let sampler = PathSampler::new(&nfa, 8).unwrap();
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..200 {
            let w = sampler.sample_word(&mut rng);
            assert_eq!(w.len(), 8);
            assert!(nfa.accepts(&w));
        }
    }

    #[test]
    fn path_frequencies_match_multiplicity_weighting() {
        // Sampling paths uniformly means word w appears ∝ amb(w). On
        // contains_11 with n=3 the words are 011, 110, 111 with
        // ambiguities 1, 1, 2 (111 contains "11" at two positions).
        let nfa = contains_11();
        let sampler = PathSampler::new(&nfa, 3).unwrap();
        assert_eq!(sampler.total_paths().to_u64(), Some(4));
        let mut rng = SmallRng::seed_from_u64(24);
        let mut counts = std::collections::HashMap::new();
        let trials = 20_000;
        for _ in 0..trials {
            let w = sampler.sample_word(&mut rng);
            *counts.entry(w.display(nfa.alphabet())).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 3);
        let share = |w: &str| counts[w] as f64 / trials as f64;
        assert!((share("011") - 0.25).abs() < 0.02);
        assert!((share("110") - 0.25).abs() < 0.02);
        assert!((share("111") - 0.50).abs() < 0.02);
    }

    #[test]
    fn unbiased_across_seeds() {
        // Mean of independent estimates converges to the exact count.
        let nfa = contains_11();
        let n = 8;
        let exact = count_exact(&nfa, n).unwrap().to_f64();
        let mut grand = 0.0;
        let runs = 40;
        for seed in 0..runs {
            let mut rng = SmallRng::seed_from_u64(100 + seed);
            let r = path_importance_sampling(&nfa, n, 500, &mut rng).unwrap();
            grand += r.estimate.to_f64();
        }
        let mean = grand / runs as f64;
        assert!((mean - exact).abs() / exact < 0.05, "grand mean {mean} vs exact {exact}");
    }

    #[test]
    fn huge_counts_survive_in_extended_range() {
        // All words of length 300 end at the accepting sink… use a 1-state
        // all-words automaton: P = 2^300, amb = 1, X = 2^300 exactly.
        let mut b = NfaBuilder::new(Alphabet::binary());
        let q = b.add_state();
        b.set_initial(q);
        b.add_accepting(q);
        b.add_transition(q, 0, q);
        b.add_transition(q, 1, q);
        let nfa = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(25);
        let r = path_importance_sampling(&nfa, 300, 10, &mut rng).unwrap();
        assert!((r.estimate.log2() - 300.0).abs() < 1e-9);
        assert!(r.rel_std_error < 1e-9);
    }
}
