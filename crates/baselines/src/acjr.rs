//! ACJR-style FPRAS baseline (Arenas–Croquevielle–Jayaram–Riveros
//! [JACM'21], the scheme the paper improves on).
//!
//! Same template as Algorithm 3 (Fig. 1 of the paper): per-(state, level)
//! count estimates and sample multisets, built level by level, with the
//! self-reducible-union property driving a backward sampler. The two
//! structural differences — exactly the ones the paper claims credit for
//! (§1) — are reproduced here:
//!
//! 1. **Union estimation.** Instead of the Karp–Luby trial loop, each
//!    union size is computed from the *full* sample lists:
//!    `⋃ᵢ Tᵢ ≈ Σᵢ Nᵢ · |{σ ∈ Sᵢ : σ ∉ T_j ∀ j<i}| / |Sᵢ|` — the natural
//!    estimator when the invariant (ACJR-1) promises every residual
//!    fraction is `1/κ³`-accurate simultaneously for *all* subsets `P`,
//!    which is what forces the union bound over `2^m` events and hence
//!    the huge sample budgets.
//! 2. **Sample budget.** `|S(qℓ)| = Θ(κ^a)` with `κ = mn/ε` — the paper's
//!    accounting has `a = 7` (`O(m⁷n⁷/ε⁷)` samples per state). The
//!    exponent is a parameter here: `a = 7` is unrunnable (that is the
//!    paper's point), so measured comparisons use a scaled-down exponent
//!    while the analytic tables (experiment E5) report the `a = 7`
//!    formula. Either way the qualitative difference stands: ACJR's
//!    per-state samples grow with `m`, ours do not.
//!
//! Everything else (unrolling, witnesses, membership oracles, `ExtFloat`
//! estimates) is shared with `fpras-core`, so measured gaps are due to
//! the algorithmic differences and not implementation accidents.

use fpras_automata::ops::{trim, with_single_accepting};
use fpras_automata::{Nfa, StateId, StateSet, StepMasks, Unrolling, Word};
use fpras_core::sample_set::{SampleEntry, SampleSet};
use fpras_core::table::RunTable;
use std::collections::HashMap;

/// The baseline keeps its own flat memo keyed by `(level, frontier
/// words)`; the engine's interned ids and leveled copy-on-write
/// [`fpras_core::UnionMemo`] are FPRAS-side optimizations the baseline
/// deliberately does not share.
type UnionMemo = HashMap<(u32, Box<[u64]>), ExtFloat>;

fn memo_key(level: usize, frontier: &StateSet) -> (u32, Box<[u64]>) {
    (level as u32, frontier.words().into())
}
use fpras_core::{FprasError, RunStats};
use fpras_numeric::{sample_extfloat_weights, ExtFloat};
use rand::{Rng, RngExt};
use std::time::Instant;

/// Parameters for the ACJR-style baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct AcjrParams {
    /// Target relative accuracy ε.
    pub eps: f64,
    /// Target failure probability δ.
    pub delta: f64,
    /// Exponent `a` in the per-state sample budget `κ^a` (paper: 7).
    pub kappa_exponent: f64,
    /// Constant multiplier on the sample budget.
    pub sample_scale: f64,
    /// Resolved samples per (state, level).
    pub ns: usize,
    /// Maximum sampling attempts per (state, level).
    pub xns: usize,
    /// Acceptance scale `γ₀ = gamma_scale / N(qℓ)`.
    pub gamma_scale: f64,
}

impl AcjrParams {
    /// The faithful `a = 7` budget — for formula tables; unrunnable.
    pub fn paper(eps: f64, delta: f64, m: usize, n: usize) -> Self {
        Self::with_exponent(eps, delta, m, n, 7.0, 1.0)
    }

    /// Runnable scaled-down profile used in measured comparisons:
    /// `ns = κ = mn/ε`, keeping the qualitative `m`-dependence.
    pub fn practical(eps: f64, delta: f64, m: usize, n: usize) -> Self {
        Self::with_exponent(eps, delta, m, n, 1.0, 1.0)
    }

    /// Explicit-exponent constructor.
    pub fn with_exponent(
        eps: f64,
        delta: f64,
        m: usize,
        n: usize,
        kappa_exponent: f64,
        sample_scale: f64,
    ) -> Self {
        let kappa = (m.max(1) * n.max(1)) as f64 / eps;
        let raw = sample_scale * kappa.powf(kappa_exponent);
        let ns = if raw.is_finite() && raw < 1e17 {
            (raw.ceil() as usize).clamp(16, 2_000_000)
        } else {
            usize::MAX
        };
        AcjrParams {
            eps,
            delta,
            kappa_exponent,
            sample_scale,
            ns,
            xns: ns.saturating_mul(8),
            gamma_scale: 2.0 / (3.0 * std::f64::consts::E),
        }
    }

    fn validate(&self) -> Result<(), FprasError> {
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(FprasError::InvalidParams(format!(
                "eps must be in (0,1), got {}",
                self.eps
            )));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(FprasError::InvalidParams(format!(
                "delta must be in (0,1), got {}",
                self.delta
            )));
        }
        if self.ns == 0 || self.ns == usize::MAX {
            return Err(FprasError::InvalidParams(format!(
                "sample budget not runnable: ns = {}",
                self.ns
            )));
        }
        Ok(())
    }
}

/// A completed ACJR-style run.
pub struct AcjrRun {
    inner: Option<AcjrInner>,
    estimate: ExtFloat,
    stats: RunStats,
    params: AcjrParams,
    n: usize,
    accepts_lambda: bool,
}

struct AcjrInner {
    nfa: Nfa,
    unroll: Unrolling,
    table: RunTable,
    memo: UnionMemo,
    q_final: StateId,
}

/// Exhaustive-fraction union estimate over the full sample lists
/// (difference #1 above). Deterministic given the stored samples.
fn exhaustive_union(
    table: &RunTable,
    level: usize,
    frontier: &StateSet,
    universe: usize,
    stats: &mut RunStats,
) -> ExtFloat {
    stats.appunion_calls += 1;
    let mut total = ExtFloat::ZERO;
    let mut prefix = StateSet::empty(universe);
    for p in frontier.iter() {
        let cell = table.cell(level, p);
        if !cell.n_est.is_zero() && !cell.samples.is_empty() {
            let mut outside = 0usize;
            let len = cell.samples.len();
            for entry in cell.samples.iter() {
                stats.membership_ops += 1;
                if !entry.reach.intersects(&prefix) {
                    outside += 1;
                }
            }
            if outside > 0 {
                total = total + cell.n_est.scale(outside as f64 / len as f64);
            }
        }
        prefix.insert(p);
    }
    total
}

fn memo_union(
    table: &RunTable,
    memo: &mut UnionMemo,
    level: usize,
    frontier: &StateSet,
    universe: usize,
    stats: &mut RunStats,
) -> ExtFloat {
    if let Some(&v) = memo.get(&memo_key(level, frontier)) {
        stats.memo_hits += 1;
        return v;
    }
    stats.memo_misses += 1;
    let v = exhaustive_union(table, level, frontier, universe, stats);
    memo.insert(memo_key(level, frontier), v);
    v
}

impl AcjrRun {
    /// Runs the baseline on `nfa` for words of length `n`.
    pub fn run<R: Rng + ?Sized>(
        nfa: &Nfa,
        n: usize,
        params: &AcjrParams,
        rng: &mut R,
    ) -> Result<AcjrRun, FprasError> {
        params.validate()?;
        let start = Instant::now();
        let mut stats = RunStats::default();

        if n == 0 {
            let accepts = nfa.is_accepting(nfa.initial());
            stats.wall = start.elapsed();
            return Ok(AcjrRun {
                inner: None,
                estimate: if accepts { ExtFloat::ONE } else { ExtFloat::ZERO },
                stats,
                params: params.clone(),
                n,
                accepts_lambda: accepts,
            });
        }
        let Some(trimmed) = trim(nfa) else {
            stats.wall = start.elapsed();
            return Ok(AcjrRun {
                inner: None,
                estimate: ExtFloat::ZERO,
                stats,
                params: params.clone(),
                n,
                accepts_lambda: false,
            });
        };
        let normalized = with_single_accepting(&trimmed);
        let q_final = normalized
            .accepting()
            .iter()
            .next()
            .expect("normalized automaton has an accepting state") as StateId;
        let unroll = Unrolling::new(&normalized, n);
        if !unroll.language_nonempty() {
            stats.wall = start.elapsed();
            return Ok(AcjrRun {
                inner: None,
                estimate: ExtFloat::ZERO,
                stats,
                params: params.clone(),
                n,
                accepts_lambda: false,
            });
        }

        let masks = StepMasks::new(&normalized);
        let m = normalized.num_states();
        let k = normalized.alphabet().size() as u8;
        let mut table = RunTable::new(m, n);
        let mut memo = UnionMemo::new();

        let init = normalized.initial() as usize;
        {
            let cell = table.cell_mut(0, init);
            cell.n_est = ExtFloat::ONE;
            cell.samples = SampleSet::repeated(
                SampleEntry { word: Word::empty(), reach: StateSet::singleton(m, init) },
                params.ns,
            );
        }

        for ell in 1..=n {
            for q in 0..m as StateId {
                let useful = unroll.useful(q, ell);
                if !useful {
                    stats.cells_skipped += 1;
                    continue;
                }
                stats.cells_processed += 1;

                // Count phase: exhaustive-fraction unions per symbol.
                let mut n_est = ExtFloat::ZERO;
                for sym in 0..k {
                    let pred_set = StateSet::from_iter(
                        m,
                        normalized
                            .predecessors(q, sym)
                            .iter()
                            .map(|&p| p as usize)
                            .filter(|&p| unroll.reachable(ell - 1).contains(p)),
                    );
                    if pred_set.is_empty() {
                        continue;
                    }
                    n_est =
                        n_est + memo_union(&table, &mut memo, ell - 1, &pred_set, m, &mut stats);
                }
                if n_est.is_zero() {
                    continue;
                }
                table.cell_mut(ell, q as usize).n_est = n_est;

                // Sampling phase: backward walk with exhaustive unions.
                let mut collected: Vec<SampleEntry> = Vec::with_capacity(params.ns);
                let mut attempts = 0usize;
                while collected.len() < params.ns && attempts < params.xns {
                    attempts += 1;
                    if let Some(w) = sample_once(
                        params,
                        &normalized,
                        &unroll,
                        &table,
                        &mut memo,
                        q,
                        ell,
                        rng,
                        &mut stats,
                    ) {
                        let reach = masks.reach(&w);
                        collected.push(SampleEntry { word: w, reach });
                    }
                }
                stats.samples_stored += collected.len() as u64;
                let missing = params.ns - collected.len();
                let mut samples = SampleSet::empty();
                for e in collected {
                    samples.push(e);
                }
                if missing > 0 {
                    let wit = unroll
                        .witness(&normalized, q, ell)
                        .expect("reachable cell must have a witness word");
                    let reach = masks.reach(&wit);
                    samples.pad(SampleEntry { word: wit, reach }, missing);
                    stats.padded_cells += 1;
                    stats.padded_entries += missing as u64;
                }
                table.cell_mut(ell, q as usize).samples = samples;
            }
        }

        let estimate = table.cell(n, q_final as usize).n_est;
        stats.wall = start.elapsed();
        Ok(AcjrRun {
            inner: Some(AcjrInner { nfa: normalized, unroll, table, memo, q_final }),
            estimate,
            stats,
            params: params.clone(),
            n,
            accepts_lambda: false,
        })
    }

    /// The estimate for `|L(A_n)|`.
    pub fn estimate(&self) -> ExtFloat {
        self.estimate
    }

    /// Run instrumentation.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The parameters used.
    pub fn params(&self) -> &AcjrParams {
        &self.params
    }

    /// Draws one almost-uniform word (the baseline's generator).
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Word> {
        let Some(inner) = self.inner.as_mut() else {
            return if self.accepts_lambda { Some(Word::empty()) } else { None };
        };
        let params = self.params.clone();
        for _ in 0..400 {
            if let Some(w) = sample_once(
                &params,
                &inner.nfa,
                &inner.unroll,
                &inner.table,
                &mut inner.memo,
                inner.q_final,
                self.n,
                rng,
                &mut self.stats,
            ) {
                return Some(w);
            }
        }
        None
    }
}

/// One backward sampling trial (the baseline's Algorithm-2 analogue).
#[allow(clippy::too_many_arguments)]
fn sample_once<R: Rng + ?Sized>(
    params: &AcjrParams,
    nfa: &Nfa,
    unroll: &Unrolling,
    table: &RunTable,
    memo: &mut UnionMemo,
    start: StateId,
    level: usize,
    rng: &mut R,
    stats: &mut RunStats,
) -> Option<Word> {
    stats.sample_calls += 1;
    let n_start = table.cell(level, start as usize).n_est;
    if n_start.is_zero() {
        stats.fail_dead_end += 1;
        return None;
    }
    let mut phi = ExtFloat::from_f64(params.gamma_scale) / n_start;
    let m = table.num_states();
    let k = nfa.alphabet().size();
    let mut frontier = StateSet::singleton(m, start as usize);
    let mut rev_syms = Vec::with_capacity(level);
    for ell in (1..=level).rev() {
        let mut sizes = Vec::with_capacity(k);
        let mut fronts = Vec::with_capacity(k);
        for sym in 0..k as u8 {
            let mut fb = nfa.step_back(&frontier, sym);
            fb.intersect_with(unroll.reachable(ell - 1));
            let sz = if fb.is_empty() {
                ExtFloat::ZERO
            } else {
                memo_union(table, memo, ell - 1, &fb, m, stats)
            };
            sizes.push(sz);
            fronts.push(fb);
        }
        let total: ExtFloat = sizes.iter().copied().sum();
        if total.is_zero() {
            stats.fail_dead_end += 1;
            return None;
        }
        let choice = match sample_extfloat_weights(rng, &sizes) {
            Some(c) => c,
            None => {
                stats.fail_dead_end += 1;
                return None;
            }
        };
        phi = phi * total / sizes[choice];
        rev_syms.push(choice as u8);
        frontier = std::mem::replace(&mut fronts[choice], StateSet::empty(0));
    }
    if phi > ExtFloat::ONE {
        stats.fail_phi_gt_one += 1;
        return None;
    }
    if rng.random_range(0.0..1.0) < phi.to_f64() {
        stats.sample_success += 1;
        Some(Word::from_reversed(rev_syms))
    } else {
        stats.fail_rejected += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpras_automata::exact::count_exact;
    use fpras_automata::{Alphabet, NfaBuilder};
    use rand::{rngs::SmallRng, SeedableRng};

    fn contains_11() -> Nfa {
        let mut b = NfaBuilder::new(Alphabet::binary());
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q2);
        b.add_transition(q0, 0, q0);
        b.add_transition(q0, 1, q0);
        b.add_transition(q0, 1, q1);
        b.add_transition(q1, 1, q2);
        b.add_transition(q2, 0, q2);
        b.add_transition(q2, 1, q2);
        b.build().unwrap()
    }

    #[test]
    fn paper_budget_is_unrunnable() {
        let p = AcjrParams::paper(0.2, 0.1, 16, 16);
        // κ = 16·16/0.2 = 1280; κ⁷ ≈ 5.6e21 — clamps to the unrunnable
        // sentinel and is rejected by validation.
        assert_eq!(p.ns, usize::MAX);
        assert!(p.validate().is_err());
    }

    #[test]
    fn practical_budget_grows_with_m() {
        // The structural difference vs our FPRAS: ns depends on m.
        let a = AcjrParams::practical(0.25, 0.1, 8, 10).ns;
        let b = AcjrParams::practical(0.25, 0.1, 16, 10).ns;
        assert!(b >= 2 * a - 1, "ns must scale with m: {a} -> {b}");
    }

    #[test]
    fn estimate_matches_exact() {
        let nfa = contains_11();
        let n = 10;
        let exact = count_exact(&nfa, n).unwrap().to_u64().unwrap();
        let params = AcjrParams::practical(0.3, 0.1, 3, n);
        let mut rng = SmallRng::seed_from_u64(19);
        let run = AcjrRun::run(&nfa, n, &params, &mut rng).unwrap();
        let err = (run.estimate().to_f64() - exact as f64).abs() / exact as f64;
        assert!(err < 0.3, "error {err} (exact {exact}, est {})", run.estimate());
        assert!(run.stats().membership_ops > 0);
    }

    #[test]
    fn degenerate_cases() {
        let nfa = contains_11();
        let params = AcjrParams::practical(0.3, 0.1, 3, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        // Empty slice.
        let run = AcjrRun::run(&nfa, 1, &params, &mut rng).unwrap();
        assert!(run.estimate().is_zero());
        // n = 0 without λ.
        let run = AcjrRun::run(&nfa, 0, &params, &mut rng).unwrap();
        assert!(run.estimate().is_zero());
    }

    #[test]
    fn generator_emits_language_words() {
        let nfa = contains_11();
        let params = AcjrParams::practical(0.3, 0.1, 3, 6);
        let mut rng = SmallRng::seed_from_u64(23);
        let mut run = AcjrRun::run(&nfa, 6, &params, &mut rng).unwrap();
        for _ in 0..50 {
            let w = run.generate(&mut rng).unwrap();
            assert_eq!(w.len(), 6);
            assert!(nfa.accepts(&w));
        }
    }
}
