//! Naive Monte-Carlo baseline.
//!
//! Sample words uniformly from `Σⁿ`, measure the acceptance rate `p̂`, and
//! report `p̂ · kⁿ`. Unbiased and embarrassingly simple — and useless as an
//! FPRAS: to get a multiplicative `(1±ε)` guarantee the trial count must
//! grow like `1/(ε²·p)` where `p = |L(A_n)|/kⁿ` can be exponentially
//! small. Experiment E11 demonstrates exactly this crossover (dense
//! languages: naive wins; thin languages: naive returns 0 forever), which
//! is the motivation for an FPRAS in the first place (paper §1).

use fpras_automata::{Nfa, StepMasks, Word};
use fpras_numeric::ExtFloat;
use rand::{Rng, RngExt};

/// Output of a naive Monte-Carlo estimation.
#[derive(Debug, Clone)]
pub struct NaiveResult {
    /// `p̂ · kⁿ`.
    pub estimate: ExtFloat,
    /// Number of sampled words that were accepted.
    pub hits: u64,
    /// Number of trials performed.
    pub trials: u64,
}

/// Runs `trials` uniform-word trials.
pub fn naive_mc<R: Rng + ?Sized>(nfa: &Nfa, n: usize, trials: u64, rng: &mut R) -> NaiveResult {
    assert!(trials > 0, "at least one trial required");
    let k = nfa.alphabet().size();
    let masks = StepMasks::new(nfa);
    let mut hits = 0u64;
    let mut word = vec![0u8; n];
    for _ in 0..trials {
        for slot in word.iter_mut() {
            *slot = rng.random_range(0..k) as u8;
        }
        if masks.accepts(&Word::from_symbols(word.clone())) {
            hits += 1;
        }
    }
    let space = ExtFloat::from_f64(k as f64).powi_ext(n);
    let estimate =
        if hits == 0 { ExtFloat::ZERO } else { space.scale(hits as f64 / trials as f64) };
    NaiveResult { estimate, hits, trials }
}

/// Trials needed for a `(1±ε, δ)` guarantee *assuming* the acceptance
/// density is at least `p_min` (multiplicative Chernoff). This is the
/// honest statement of naive MC's weakness: `p_min` is exactly what we
/// don't know, and it can be `k⁻ⁿ`.
pub fn trials_for(eps: f64, delta: f64, p_min: f64) -> u64 {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0 && p_min > 0.0 && p_min <= 1.0);
    ((3.0 * (2.0 / delta).ln()) / (eps * eps * p_min)).ceil() as u64
}

/// Extension trait: integer powers of [`ExtFloat`] (local helper).
trait PowiExt {
    fn powi_ext(self, e: usize) -> ExtFloat;
}

impl PowiExt for ExtFloat {
    fn powi_ext(self, e: usize) -> ExtFloat {
        let mut acc = ExtFloat::ONE;
        let mut base = self;
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpras_automata::{Alphabet, NfaBuilder};
    use rand::{rngs::SmallRng, SeedableRng};

    fn ends_in_1() -> Nfa {
        let mut b = NfaBuilder::new(Alphabet::binary());
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.add_accepting(q1);
        for sym in [0, 1] {
            b.add_transition(q0, sym, q0);
        }
        b.add_transition(q0, 1, q1);
        b.build().unwrap()
    }

    #[test]
    fn dense_language_estimated_well() {
        // Half of all words end in 1: p = 0.5.
        let nfa = ends_in_1();
        let mut rng = SmallRng::seed_from_u64(10);
        let r = naive_mc(&nfa, 10, 20_000, &mut rng);
        let exact = 512.0;
        let err = (r.estimate.to_f64() - exact).abs() / exact;
        assert!(err < 0.05, "err {err}");
        assert_eq!(r.trials, 20_000);
    }

    #[test]
    fn thin_language_returns_zero() {
        // Language {1^n}: a single word among 2^n.
        let mut b = NfaBuilder::new(Alphabet::binary());
        let states: Vec<_> = (0..31).map(|_| b.add_state()).collect();
        b.set_initial(states[0]);
        b.add_accepting(states[30]);
        for w in states.windows(2) {
            b.add_transition(w[0], 1, w[1]);
        }
        let nfa = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let r = naive_mc(&nfa, 30, 10_000, &mut rng);
        // 10^4 trials against p = 2^-30: certain miss.
        assert!(r.estimate.is_zero());
        assert_eq!(r.hits, 0);
    }

    #[test]
    fn trials_formula_blows_up_for_thin() {
        let dense = trials_for(0.1, 0.1, 0.5);
        let thin = trials_for(0.1, 0.1, 2f64.powi(-30));
        assert!(thin / dense > 1 << 28, "ratio {}", thin / dense);
    }

    #[test]
    fn large_n_space_does_not_overflow() {
        let nfa = ends_in_1();
        let mut rng = SmallRng::seed_from_u64(4);
        let r = naive_mc(&nfa, 2000, 100, &mut rng);
        // Estimate ~ 0.5 * 2^2000 — far above f64 range, fine in ExtFloat.
        assert!(r.estimate.log2() > 1990.0);
    }
}
