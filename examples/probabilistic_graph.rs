//! Probabilistic graph homomorphism (paper §1, third application):
//! what is the probability that an unreliable road network still
//! supports a scheduled delivery route?
//!
//! The network is a probabilistic labeled graph — each road segment
//! (edge) survives the day independently with a known probability. The
//! route is a 1-way path query over segment types. The survival
//! probability of *some* valid route is exactly the probability that a
//! random subgraph admits a homomorphism from the path — reduced to
//! #NFA and answered by the FPRAS, with the exact world enumeration as
//! the cross-check.
//!
//! ```text
//! cargo run --release --example probabilistic_graph
//! ```

use fpras_apps::{estimate_hom, hom_exact, hom_to_nfa, PathQuery, ProbEdge, ProbGraph};
use rand::{rngs::SmallRng, SeedableRng};

// Segment types (query labels).
const HIGHWAY: u32 = 0;
const BRIDGE: u32 = 1;
const TUNNEL: u32 = 2;

fn edge(src: u32, dst: u32, label: u32, num: u32, bits: u32) -> ProbEdge {
    ProbEdge { src, dst, label, num, bits }
}

fn main() {
    // Six depots; several redundant segments per type. Probabilities are
    // dyadic: num / 2^bits (e.g. 13/16 ≈ 0.81).
    let network = ProbGraph {
        vertices: 6,
        edges: vec![
            // Highways out of depots 0 and 1.
            edge(0, 2, HIGHWAY, 13, 4),
            edge(0, 3, HIGHWAY, 7, 3),
            edge(1, 2, HIGHWAY, 3, 2),
            // Bridges toward the river district.
            edge(2, 4, BRIDGE, 11, 4),
            edge(3, 4, BRIDGE, 1, 1),
            // Tunnels into the city center.
            edge(4, 5, TUNNEL, 15, 4),
            edge(4, 0, TUNNEL, 1, 2), // loops back; still a valid walk end
        ],
    };
    // Route shape: highway, then bridge, then tunnel.
    let route = PathQuery { labels: vec![HIGHWAY, BRIDGE, TUNNEL] };

    let (nfa, coin_bits) = hom_to_nfa(&network, &route).expect("reduction");
    println!(
        "reduced #NFA instance: {} states, {} transitions, {} coin bits",
        nfa.num_states(),
        nfa.num_transitions(),
        coin_bits
    );

    let exact = hom_exact(&network, &route).expect("exact enumeration");
    println!("exact survival probability:     {exact:.6}");

    let mut rng = SmallRng::seed_from_u64(2718);
    let est = estimate_hom(&network, &route, 0.15, 0.05, &mut rng).expect("fpras");
    println!("FPRAS survival probability:     {:.6}", est.probability);
    println!(
        "relative error:                 {:.4}  (target ε = 0.15)",
        (est.probability - exact).abs() / exact
    );

    // What-if: the second bridge is hardened to probability 1.
    let mut hardened = network.clone();
    hardened.edges[4] = edge(3, 4, BRIDGE, 2, 1);
    let exact2 = hom_exact(&hardened, &route).expect("exact");
    println!("\nafter hardening bridge 3→4:     {exact2:.6} (was {exact:.6})");
    assert!(exact2 >= exact);
}
