//! Regular path queries on a small "social network" graph database —
//! the paper's RPQ application (§1): count and sample the label words of
//! paths matching a property-path regex.
//!
//! ```text
//! cargo run --release --example rpq_social_network
//! ```

use fpras_apps::rpq::{count_answers, rpq_instance, sample_answer, Rpq};
use fpras_automata::exact::count_exact;
use fpras_workloads::LabeledGraph;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    // Nodes: 0 = alice, 1 = bob, 2 = carol, 3 = dave, 4 = erin.
    // Labels: a = follows, b = blocks, c = messages.
    let names = ["alice", "bob", "carol", "dave", "erin"];
    let graph = LabeledGraph::new(
        5,
        3,
        vec![
            (0, 0, 1), // alice follows bob
            (1, 0, 2), // bob follows carol
            (2, 0, 3), // carol follows dave
            (3, 0, 0), // dave follows alice (cycle!)
            (0, 2, 2), // alice messages carol
            (2, 1, 4), // carol blocks erin
            (1, 2, 4), // bob messages erin
            (4, 0, 1), // erin follows bob
        ],
    );

    // "How many follows-chains of length ≤ 12, possibly ending with one
    //  message, connect alice to erin?"
    let query = Rpq { source: 0, pattern: "a*c?".into(), target: 4 };
    let max_len = 12;
    let mut rng = SmallRng::seed_from_u64(99);

    println!(
        "graph: {} nodes, {} edges; query {} --[{}]--> {}",
        graph.nodes,
        graph.edges.len(),
        names[query.source as usize],
        query.pattern,
        names[query.target as usize]
    );

    let counts = count_answers(&graph, &query, max_len, 0.25, 0.1, &mut rng).expect("rpq count");
    println!("\nestimated answers of length ≤ {max_len}: {}", counts.total);
    println!("{:<8} {:>14} {:>12}", "length", "estimate", "exact");
    let instance = rpq_instance(&graph, &query).expect("instance");
    for (ell, est) in counts.per_length.iter().enumerate() {
        let exact = count_exact(&instance, ell).expect("exact");
        println!("{:<8} {:>14} {:>12}", ell, est.to_string(), exact.to_string());
    }

    println!("\nsampled answers (label words) of length 7:");
    for _ in 0..4 {
        match sample_answer(&graph, &query, 7, 0.25, 0.1, &mut rng).expect("sampler") {
            Some(w) => println!("  {}", w.display(instance.alphabet())),
            None => println!("  (no answers at this length)"),
        }
    }
}
