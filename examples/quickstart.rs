//! Quickstart: build an NFA, estimate a slice count, sample witnesses.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fpras_automata::exact::count_exact;
use fpras_automata::{Alphabet, NfaBuilder};
use fpras_core::{estimate_count, FprasRun, Params, UniformGenerator};
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    // The language of binary words containing "11", as a 3-state NFA.
    let mut b = NfaBuilder::new(Alphabet::binary());
    let (q0, q1, q2) = (b.add_state(), b.add_state(), b.add_state());
    b.set_initial(q0);
    b.add_accepting(q2);
    b.add_transition(q0, 0, q0);
    b.add_transition(q0, 1, q0);
    b.add_transition(q0, 1, q1);
    b.add_transition(q1, 1, q2);
    b.add_transition(q2, 0, q2);
    b.add_transition(q2, 1, q2);
    let nfa = b.build().expect("valid automaton");

    let n = 24;
    let (eps, delta) = (0.2, 0.05);

    // Approximate |L(A_n)| with the FPRAS…
    let result = estimate_count(&nfa, n, eps, delta, 42).expect("count");
    println!("FPRAS estimate for n = {n}:  {}", result.estimate);
    println!("  membership ops: {}", result.stats.membership_ops);
    println!("  samples/cell:   {:.1}", result.stats.samples_per_cell());

    // …and compare with the exact determinization DP (cheap here).
    let exact = count_exact(&nfa, n).expect("exact");
    let rel = (result.estimate.to_f64() - exact.to_f64()).abs() / exact.to_f64();
    println!("exact count:                 {exact}");
    println!("relative error:              {rel:.4}  (target ε = {eps})");

    // The finished run is an almost-uniform generator over the language.
    let params = Params::practical(eps, delta, nfa.num_states(), n);
    let mut rng = SmallRng::seed_from_u64(7);
    let run = FprasRun::run(&nfa, n, &params, &mut rng).expect("run");
    let mut generator = UniformGenerator::new(run);
    println!("\nfive almost-uniform samples from L(A_{n}):");
    for _ in 0..5 {
        let w = generator.generate(&mut rng).expect("language is non-empty");
        assert!(nfa.accepts(&w));
        println!("  {}", w.display(nfa.alphabet()));
    }
}
