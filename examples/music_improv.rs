//! Machine improvisation with formal specifications — the paper's most
//! whimsical citation (§1, Donzé et al., ICMC 2014): sample melodies
//! *uniformly* from the language of a style-constraint automaton, so the
//! improviser is maximally diverse while never breaking the rules.
//!
//! Style rules for a four-note motif language over {c, d, e, g}:
//!   * a phrase is a sequence of two-note cells;
//!   * each cell steps up (c→d, d→e, e→g) or repeats a note;
//!   * the phrase must end on the tonic cell "cc" or the cadence "eg".
//!
//! ```text
//! cargo run --release --example music_improv
//! ```

use fpras_automata::regex::compile_regex;
use fpras_automata::Alphabet;
use fpras_core::{FprasRun, Params, UniformGenerator};
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let alphabet = Alphabet::with_names(vec!['c', 'd', 'e', 'g']);
    // Cells: steps up, repeats, and the two closing cells.
    let style = "((cd|de|eg|cc|dd|ee|gg))*(cc|eg)";
    let nfa = compile_regex(style, &alphabet).expect("style compiles");

    let bars = 8; // notes per phrase
    let params = Params::practical(0.25, 0.1, nfa.num_states(), bars);
    let mut rng = SmallRng::seed_from_u64(1914);
    let run = FprasRun::run(&nfa, bars, &params, &mut rng).expect("run");
    println!(
        "style automaton: {} states; ≈ {} admissible {bars}-note phrases",
        nfa.num_states(),
        run.estimate()
    );

    let mut generator = UniformGenerator::new(run);
    println!("\nimprovised phrases (uniform over the style language):");
    for i in 1..=8 {
        match generator.generate(&mut rng) {
            Some(phrase) => {
                assert!(nfa.accepts(&phrase), "improviser broke the rules");
                println!("  {i}. {}", phrase.display(&alphabet));
            }
            None => println!("  {i}. (style admits no {bars}-note phrase)"),
        }
    }
    println!(
        "\nrejection rate {:.2} — the cost of exactness-free uniformity (Thm 2(2))",
        generator.run().stats().rejection_rate()
    );
}
