//! Three counters, three blow-up profiles: determinization DP vs BDD
//! model counting vs the FPRAS.
//!
//! Both exact methods are worst-case exponential — on *different*
//! instances — while the FPRAS is polynomial on all of them. This
//! example walks the three regimes:
//!
//! 1. a fixed-position language where the subset DP needs `2^k` subsets
//!    but the BDD collapses to one decision node;
//! 2. a "halves differ" language where both exact methods blow up and
//!    only the FPRAS answers at scale;
//! 3. an ordinary structured language where everything is cheap and all
//!    three agree.
//!
//! ```text
//! cargo run --release --example bdd_exact
//! ```

use fpras_automata::exact::Determinization;
use fpras_bdd::compile_slice_budgeted;
use fpras_core::{estimate_count, run_parallel, Params};
use fpras_workloads::families;
use std::time::Instant;

fn main() {
    let budget = 1 << 11; // node/subset cap so blow-ups fail fast

    println!("regime 1: k-th symbol from the end (k = 18, n = 36)");
    let k = 18;
    let nfa = families::kth_symbol_from_end(k);
    let n = 2 * k;
    match Determinization::build_capped(&nfa, n, budget) {
        Ok(dp) => println!("  subset DP width: {}", dp.max_width()),
        Err(e) => println!("  subset DP:       {e}"),
    }
    let compiled = fpras_bdd::compile_slice(&nfa, n).expect("tiny BDD");
    println!("  BDD nodes:       {} → count {}", compiled.bdd.num_nodes(), compiled.count());

    println!("\nregime 2: halves differ (k = 11, n = 22)");
    let k = 11;
    let nfa = families::halves_differ(k);
    let n = 2 * k;
    match Determinization::build_capped(&nfa, n, budget) {
        Ok(dp) => println!("  subset DP width: {}", dp.max_width()),
        Err(e) => println!("  subset DP:       {e}"),
    }
    match compile_slice_budgeted(&nfa, n, budget) {
        Ok(c) => println!("  BDD nodes:       {}", c.bdd.num_nodes()),
        Err(e) => println!("  BDD:             {e}"),
    }
    let started = Instant::now();
    let params = Params::practical(0.25, 0.1, nfa.num_states(), n);
    let est = run_parallel(&nfa, n, &params, 7, 8).expect("fpras").estimate();
    // |L| = 2^{2k} − 2^k exactly; compare on the log scale.
    let exact_log2 = ((2f64.powi(2 * k as i32)) - 2f64.powi(k as i32)).log2();
    println!(
        "  FPRAS (8 threads): log2 ≈ {:.4} (truth {:.4}) in {:?}",
        est.log2(),
        exact_log2,
        started.elapsed()
    );

    println!("\nregime 3: words containing \"101\" (n = 24)");
    let nfa = families::contains_substring(&[1, 0, 1]);
    let n = 24;
    let dp = Determinization::build_capped(&nfa, n, budget).expect("small");
    let c_dp = dp.slice_count(n);
    let compiled = fpras_bdd::compile_slice(&nfa, n).expect("small");
    let c_bdd = compiled.count();
    let est = estimate_count(&nfa, n, 0.2, 0.1, 11).expect("fpras").estimate;
    println!("  subset DP:  {c_dp}   (width {})", dp.max_width());
    println!("  BDD:        {c_bdd}   ({} nodes)", compiled.bdd.num_nodes());
    println!("  FPRAS:      {est}");
    assert_eq!(c_dp, c_bdd);
}
