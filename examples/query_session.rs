//! One automaton, many lengths, one session: incremental level reuse.
//!
//! ```text
//! cargo run --release --example query_session
//! ```
//!
//! Opens a [`QuerySession`] on the `contains11` fixture
//! (`examples/data/contains11.nfa`) and answers a sweep of lengths in a
//! deliberately mixed order. The session builds each DP level exactly
//! once — a query for a longer slice *extends* the checkpointed run,
//! a query for a shorter one is a table read — and the example prints,
//! per query, how many levels were built vs. reused.
//!
//! The load-bearing invariant (DESIGN.md D11): every answer is
//! **bit-identical** to a fresh engine run at that length under the
//! same seed and policy, which this example asserts for each query
//! while paying the fresh-run cost only here, for the comparison — the
//! session itself never rebuilds a finished level.

use fpras_automata::parse;
use fpras_core::service::{QuerySession, SessionPolicy};
use fpras_core::{run_parallel, Params};

const FIXTURE: &str = include_str!("data/contains11.nfa");

fn main() {
    let nfa = parse::from_text(FIXTURE).expect("fixture parses");
    let max_n = 24;
    let seed = 7;
    let params = Params::for_session(0.3, 0.1, nfa.num_states(), max_n);
    let policy = SessionPolicy::Deterministic { seed, threads: 1 };
    let mut session = QuerySession::new(&nfa, params.clone(), policy).expect("valid params");

    println!("query session over contains-11 (seed {seed}, max n {max_n})");
    println!(
        "{:>5}  {:>14}  {:>12}  {:>13}  {:>13}",
        "n", "estimate", "log2", "levels built", "levels reused"
    );
    let sweep = [8usize, 4, 16, 12, 24, 16, 6, 20];
    let mut built_before = 0;
    for n in sweep {
        let est = session.estimate(n).expect("no budget configured");
        let built_now = session.stats().levels_built;
        let reused_now = session.stats().levels_reused;
        println!(
            "{n:>5}  {:>14.5e}  {:>12.3}  {:>13}  {:>13}",
            est.to_f64(),
            est.log2(),
            built_now - built_before,
            reused_now,
        );
        built_before = built_now;

        // The invariant that makes the subsystem safe: the session's
        // answer is bit-identical to a fresh run at n.
        let fresh = run_parallel(&nfa, n, &params, seed, 1).expect("fresh run");
        assert_eq!(est, fresh.estimate(), "session must equal fresh run at n = {n}");
    }

    let s = session.stats();
    println!(
        "\ntotal: {} queries, {} levels built once, {} reused ({:.0}% of query demand)",
        s.queries_served,
        s.levels_built,
        s.levels_reused,
        100.0 * s.reuse_rate(),
    );
    assert_eq!(s.levels_built, max_n as u64, "each level is built exactly once");
    assert!(s.levels_reused > s.levels_built, "the sweep reuses more than it builds");
    println!("every answer was bit-identical to a fresh engine run (D11) ✓");
}
