//! Count regex matches by length — the information-extraction shape of
//! #NFA (paper §1): how many length-n strings match a pattern?
//!
//! ```text
//! cargo run --release --example regex_count -- '(0|10)*1?' 30
//! ```
//! (both arguments optional).

use fpras_automata::exact::count_exact;
use fpras_automata::regex::compile_regex;
use fpras_automata::Alphabet;
use fpras_core::estimate_count;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pattern = args.first().map(String::as_str).unwrap_or("(0|10)*1?");
    let max_n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);

    let alphabet = Alphabet::binary();
    let nfa = match compile_regex(pattern, &alphabet) {
        Ok(nfa) => nfa,
        Err(e) => {
            eprintln!("cannot compile pattern {pattern:?}: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "pattern {pattern:?} compiled to {} states / {} transitions",
        nfa.num_states(),
        nfa.num_transitions()
    );
    println!("{:<6} {:>16} {:>16} {:>10}", "n", "fpras estimate", "exact", "rel err");

    for n in (0..=max_n).step_by(max_n.div_ceil(10).max(1)) {
        let est = estimate_count(&nfa, n, 0.25, 0.1, 1234 + n as u64).expect("count").estimate;
        let exact = count_exact(&nfa, n).expect("small pattern automata determinize cheaply");
        let exact_f = exact.to_f64();
        let err = if exact_f == 0.0 {
            if est.is_zero() {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (est.to_f64() - exact_f).abs() / exact_f
        };
        println!("{:<6} {:>16} {:>16} {:>10.4}", n, est.to_string(), exact.to_string(), err);
    }
    println!("\n(the default pattern is the no-adjacent-ones language: Fibonacci counts)");
}
