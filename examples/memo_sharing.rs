//! Memo lifecycle and sample-pass frontier sharing, made visible.
//!
//! ```text
//! cargo run --release --example memo_sharing
//! ```
//!
//! Walks the `contains11` fixture (`examples/data/contains11.nfa`)
//! through the engine twice — sharing on and off — and prints the
//! `RunStats` counters of the leveled copy-on-write memo (DESIGN.md
//! §2.2) and the frontier-sharing pre-pass (D9):
//!
//! * `memo.snapshots` / `memo.entries_shared` — every sampled cell took
//!   an O(1) snapshot of the level-start base layer; `entries_shared`
//!   is the entry-clone volume the old flat memo would have paid.
//! * `memo.overlay_entries` — the only thing still copied per cell: the
//!   thin overlay of entries the cell inserted itself.
//! * `share.frontiers_preestimated` / `share.preestimate_hits` — hot
//!   sampler frontiers estimated once before the sample pass, and how
//!   often per-cell sampling was answered by those shared entries.
//!
//! Because sampler union randomness is frontier-keyed, the two runs are
//! **bit-identical** — sharing changes work, never output — which this
//! example asserts.

use fpras_automata::parse;
use fpras_core::{run_parallel, Params, RunStats};

const FIXTURE: &str = include_str!("data/contains11.nfa");

fn print_run(label: &str, stats: &RunStats) {
    println!("{label}");
    println!("  membership ops            {:>10}", stats.membership_ops);
    println!("  sampler memo hits/misses  {:>10} / {}", stats.memo_hits, stats.memo_misses);
    println!("  memo commits              {:>10}", stats.memo.commits);
    println!("  memo entries promoted     {:>10}", stats.memo.entries_promoted);
    println!("  memo snapshots (CoW)      {:>10}", stats.memo.snapshots);
    println!("  memo entries shared       {:>10}", stats.memo.entries_shared);
    println!("  memo overlay entries      {:>10}", stats.memo.overlay_entries);
    println!("  share pre-estimated       {:>10}", stats.share.frontiers_preestimated);
    println!("  share pre-estimate hits   {:>10}", stats.share.preestimate_hits);
    println!("  share already seeded      {:>10}", stats.share.keys_already_seeded);
}

fn main() {
    let nfa = parse::from_text(FIXTURE).expect("shipped fixture parses");
    let (n, eps, delta, seed, threads) = (24, 0.2, 0.05, 42, 4);
    println!(
        "contains11 fixture: {} states, n = {n}, ε = {eps}, δ = {delta}, \
         deterministic policy × {threads} threads\n",
        nfa.num_states()
    );

    let mut shared = Params::practical(eps, delta, nfa.num_states(), n);
    shared.share_sampler_frontiers = true;
    let mut unshared = shared.clone();
    unshared.share_sampler_frontiers = false;

    let a = run_parallel(&nfa, n, &shared, seed, threads).expect("shared run");
    let b = run_parallel(&nfa, n, &unshared, seed, threads).expect("unshared run");

    print_run("sharing ON  (practical default):", a.stats());
    println!();
    print_run("sharing OFF (--no-share control):", b.stats());

    // The contract this example exists to demonstrate: sharing is a pure
    // work optimization. Same seed → same estimate, bit for bit.
    assert_eq!(
        a.estimate().to_f64(),
        b.estimate().to_f64(),
        "frontier sharing must never change the estimate"
    );
    assert!(a.stats().share.preestimate_hits > 0, "sharing must actually fire on contains11");
    assert!(b.stats().share.frontiers_preestimated == 0, "the control must not pre-estimate");
    assert!(
        a.stats().memo_misses < b.stats().memo_misses,
        "sharing must convert per-cell misses into shared hits"
    );

    println!(
        "\nestimate |L(A_{n})| ≈ {} (identical in both runs)\n\
         sampler misses avoided by sharing: {}\n\
         entry clones avoided by the CoW memo: {} (flat-memo volume), \
         only {} overlay entries copied",
        a.estimate(),
        b.stats().memo_misses - a.stats().memo_misses,
        a.stats().memo.entries_shared,
        a.stats().memo.overlay_entries,
    );
}
