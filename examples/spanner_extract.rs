//! Document spanners: counting and sampling information-extraction
//! results (paper §1, "information extraction" — the application that
//! motivated the original ACJR FPRAS).
//!
//! The spanner below extracts pairs `(x, y)` of non-empty 1-runs with
//! `x` strictly before `y` — think "two field values from a log line".
//! One document can have quadratically many answers, and each answer can
//! be produced by many runs (every alignment of the gaps), so counting
//! distinct answers is exactly the #NFA regime.
//!
//! ```text
//! cargo run --release --example spanner_extract
//! ```

use fpras_automata::{Alphabet, Word};
use fpras_spanner::{
    count_answers_exact, estimate_answers, sample_answers, VSetAutomaton, VSetBuilder,
};
use rand::{rngs::SmallRng, RngExt, SeedableRng};

/// `.* ⊢x 1+ x⊣ .* ⊢y 1+ y⊣ .*` over the binary alphabet.
fn two_field_spanner() -> VSetAutomaton {
    let mut b = VSetBuilder::new(Alphabet::binary(), 2);
    let s: Vec<_> = (0..7).map(|_| b.add_state()).collect();
    b.set_initial(s[0]);
    b.add_accepting(s[6]);
    for sym in [0, 1] {
        b.read(s[0], sym, s[0]); // leading .*
        b.read(s[3], sym, s[3]); // middle .*
        b.read(s[6], sym, s[6]); // trailing .*
    }
    b.open(s[0], 0, s[1]);
    b.read(s[1], 1, s[2]);
    b.read(s[2], 1, s[2]);
    b.close(s[2], 0, s[3]);
    b.open(s[3], 1, s[4]);
    b.read(s[4], 1, s[5]);
    b.read(s[5], 1, s[5]);
    b.close(s[5], 1, s[6]);
    b.build().expect("valid spanner")
}

fn main() {
    let spanner = two_field_spanner();
    let mut rng = SmallRng::seed_from_u64(314);

    // A synthetic "log line" with several 1-runs.
    let doc =
        Word::from_symbols((0..18).map(|i| u8::from(i % 5 != 0 && i % 7 != 2)).collect::<Vec<_>>());
    println!("document ({} symbols): {}", doc.len(), doc.display(&Alphabet::binary()));

    let exact = count_answers_exact(&spanner, &doc).expect("exact");
    println!("exact distinct answers:  {exact}");

    let est = estimate_answers(&spanner, &doc, 0.2, 0.1, &mut rng).expect("fpras");
    println!(
        "FPRAS estimate:          {}   (reduced #NFA: {} states, word length {})",
        est.estimate, est.nfa_states, est.word_len
    );

    println!("\nfive almost-uniform answers:");
    let samples = sample_answers(&spanner, &doc, 5, 0.2, 0.1, &mut rng).expect("samples");
    for tuple in &samples {
        let fields = tuple.project(doc.symbols());
        println!(
            "  {tuple}   x = {:?}, y = {:?}",
            fields[0].iter().map(|s| s.to_string()).collect::<String>(),
            fields[1].iter().map(|s| s.to_string()).collect::<String>(),
        );
    }

    // Answer growth with document length: counting stays cheap for the
    // FPRAS even as the answer set explodes.
    println!("\nanswers vs document length (all-ones documents):");
    println!("  len | distinct answers");
    for len in [8usize, 12, 16, 20] {
        let doc = Word::from_symbols(vec![1; len]);
        let count = count_answers_exact(&spanner, &doc).expect("exact");
        println!("  {len:3} | {count}");
    }
    let _ = rng.random::<u64>();
}
