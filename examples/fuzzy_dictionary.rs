//! Approximate dictionary matching: how many well-formed message codes
//! are within edit distance 2 of a canonical codeword?
//!
//! Information-extraction pipelines (paper §1, "beyond databases") need
//! to *count* approximate matches, e.g. to rank pattern variants or to
//! bound verification work. The edit-distance-`d` neighbourhood of a
//! pattern is a regular language (Levenshtein automaton), the validity
//! constraint is another, and their product is a #NFA instance whose
//! ambiguity (many alignments per string) defeats path counting — the
//! FPRAS handles it directly.
//!
//! ```text
//! cargo run --release --example fuzzy_dictionary
//! ```

use fpras_automata::exact::count_exact;
use fpras_automata::ops::product;
use fpras_automata::regex::compile_regex;
use fpras_automata::{levenshtein_nfa, Alphabet, Word};
use fpras_core::{estimate_count, FprasRun, Params, UniformGenerator};
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let alphabet = Alphabet::binary();
    // Canonical codeword and tolerance.
    let codeword = Word::parse("110100110101", &alphabet).expect("valid codeword");
    let max_dist = 2;
    let neighbourhood = levenshtein_nfa(codeword.symbols(), max_dist, &alphabet);

    // Validity: well-formed codes never contain "000" (a framing gap).
    let valid = compile_regex("((1|01|001)*(|0|00))", &alphabet).expect("framing regex");

    // The instance: valid codes within distance 2 of the codeword.
    let instance = product(&neighbourhood, &valid);
    println!(
        "product automaton: {} states, {} transitions",
        instance.num_states(),
        instance.num_transitions()
    );

    let (eps, delta) = (0.2, 0.1);
    println!("\n  n | exact | FPRAS estimate | rel err");
    println!("  --|-------|----------------|--------");
    for n in [10usize, 12, 14] {
        let exact = count_exact(&instance, n).expect("exact count").to_f64();
        let est = estimate_count(&instance, n, eps, delta, 2024 + n as u64)
            .expect("fpras")
            .estimate
            .to_f64();
        let rel = if exact == 0.0 { 0.0 } else { (est - exact).abs() / exact };
        println!("  {n:2} | {exact:5} | {est:14.1} | {rel:.4}");
    }

    // Sample a few fuzzy matches at n = 12 and show their distances.
    let n = 12;
    let params = Params::practical(eps, delta, instance.num_states(), n);
    let mut rng = SmallRng::seed_from_u64(99);
    let run = FprasRun::run(&instance, n, &params, &mut rng).expect("run");
    let mut generator = UniformGenerator::new(run);
    println!("\nalmost-uniform fuzzy matches at n = {n}:");
    for _ in 0..5 {
        let w = generator.generate(&mut rng).expect("non-empty");
        let dist = fpras_automata::edit_distance(codeword.symbols(), w.symbols());
        println!("  {}  (distance {dist})", w.display(&alphabet));
        assert!(dist <= max_dist);
    }
}
