//! Almost-uniform generation and an on-the-spot uniformity check —
//! the counting↔sampling inter-reducibility the FPRAS is built on
//! (paper §1.1, Theorem 2).
//!
//! ```text
//! cargo run --release --example uniform_generation
//! ```

use fpras_automata::exact::count_exact;
use fpras_core::{FprasRun, Params, UniformGenerator};
use fpras_numeric::stats::tv_to_uniform;
use fpras_workloads::families;
use rand::{rngs::SmallRng, SeedableRng};
use std::collections::HashMap;

fn main() {
    // Words containing "11", length 6: small enough to tabulate fully.
    let nfa = families::contains_substring(&[1, 1]);
    let n = 6;
    let support = count_exact(&nfa, n).expect("exact").to_u64().expect("small") as usize;

    let params = Params::practical(0.2, 0.05, nfa.num_states(), n);
    let mut rng = SmallRng::seed_from_u64(2718);
    let run = FprasRun::run(&nfa, n, &params, &mut rng).expect("run");
    println!("estimate {} vs exact {support}; generator rejection stats follow", run.estimate());
    let mut generator = UniformGenerator::new(run);

    let draws = 40_000;
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for w in generator.generate_many(&mut rng, draws) {
        assert!(nfa.accepts(&w), "generator must only emit language words");
        *counts.entry(w.to_index(2)).or_insert(0) += 1;
    }

    println!("\n{draws} draws over the {support} words of L(A_{n}):");
    let mut hist: Vec<(u64, u64)> = counts.iter().map(|(&w, &c)| (w, c)).collect();
    hist.sort();
    for (word_idx, count) in hist {
        let w = fpras_automata::Word::from_index(word_idx, n, 2);
        let bar = "#".repeat((count as usize * 60) / (draws / support));
        println!("  {}  {:>6}  {}", w.display(nfa.alphabet()), count, bar);
    }

    let tv = tv_to_uniform(&counts, support);
    println!("\nempirical TV distance to uniform: {tv:.4}");
    println!(
        "rejection rate: {:.3} (Theorem 2(2) bound: ≤ {:.3})",
        generator.run().stats().rejection_rate(),
        1.0 - 2.0 / (3.0 * std::f64::consts::E * std::f64::consts::E)
    );
}
