//! Probabilistic query evaluation through the #NFA reduction — the
//! paper's PQE application (§1).
//!
//! A tuple-independent database with dyadic probabilities is compiled to
//! a "world-word" NFA: each tuple contributes coin bits, and the automaton
//! accepts exactly the worlds where the path query holds, so
//! `PQE = |L(A_n)| / 2ⁿ`.
//!
//! ```text
//! cargo run --release --example pqe_dyadic
//! ```

use fpras_apps::pqe::{estimate_pqe, pqe_exact, pqe_to_nfa, ProbDatabase, ProbTuple};
use rand::{rngs::SmallRng, SeedableRng};

fn t(src: u32, dst: u32, num: u32, bits: u32) -> ProbTuple {
    ProbTuple { src, dst, num, bits }
}

fn main() {
    // Q = ∃x,y,z. Follows(x,y) ∧ Endorses(y,z) over an uncertain graph:
    // constants 0..5, probabilities s/2^b extracted from a noisy loader.
    let db = ProbDatabase {
        adom: 6,
        tuples: vec![
            vec![
                t(0, 1, 3, 2), // Follows(0,1) with Pr 3/4
                t(0, 2, 1, 2), // Pr 1/4
                t(3, 2, 1, 1), // Pr 1/2
                t(4, 5, 7, 3), // Pr 7/8
            ],
            vec![
                t(1, 3, 1, 1), // Endorses(1,3) with Pr 1/2
                t(2, 4, 5, 3), // Pr 5/8
                t(5, 0, 1, 2), // Pr 1/4
            ],
        ],
    };

    let (nfa, coin_bits) = pqe_to_nfa(&db).expect("reduction");
    println!(
        "database: {} tuples, {} coin bits -> NFA with {} states / {} transitions",
        db.tuples.iter().map(Vec::len).sum::<usize>(),
        coin_bits,
        nfa.num_states(),
        nfa.num_transitions(),
    );

    let exact = pqe_exact(&db).expect("small database enumerates exactly");
    println!("exact PQE (world enumeration):    {exact:.6}");

    let mut rng = SmallRng::seed_from_u64(2024);
    let est = estimate_pqe(&db, 0.2, 0.05, &mut rng).expect("estimate");
    println!("FPRAS PQE (via #NFA):             {:.6}", est.probability);
    println!("relative error:                   {:.4}", (est.probability - exact).abs() / exact);
    println!(
        "\n(the reduction counted satisfying worlds: log2 ≈ {:.2} of {} coin bits)",
        est.world_count_log2, est.coin_bits
    );
}
