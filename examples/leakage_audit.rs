//! Information-leakage audit of an output sanitizer — the paper's
//! "beyond databases" application (§1, refs [5, 7, 15]).
//!
//! A sanitizer's feasible outputs form a regular language; Smith's
//! min-entropy leakage of the (deterministic) channel is
//! `log₂ |feasible outputs|` — a #NFA instance per output length.
//!
//! ```text
//! cargo run --release --example leakage_audit
//! ```

use fpras_apps::leakage::estimate_leakage;
use fpras_automata::regex::compile_regex;
use fpras_automata::Alphabet;
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let alphabet = Alphabet::binary();
    let n = 32;
    let mut rng = SmallRng::seed_from_u64(7);

    // Three sanitizer designs for a 32-bit observable field.
    let channels = [
        ("passthrough", "(0|1)*", "emits the secret unchanged"),
        ("mask-odd-bits", "((0|1)0)*", "zeroes every second bit"),
        ("rate-limited", "(0{3}(0|1))*", "one free bit per 4-bit frame"),
    ];

    println!("output length n = {n}; leakage = log2 #feasible outputs (±ε/ln2 bits)\n");
    println!("{:<16} {:>12} {:>14}   description", "sanitizer", "bits leaked", "density(log2)");
    for (name, pattern, description) in channels {
        let nfa = compile_regex(pattern, &alphabet).expect("sanitizer patterns compile");
        match estimate_leakage(&nfa, n, 0.2, 0.05, &mut rng).expect("estimate") {
            Some(est) => println!(
                "{:<16} {:>12.2} {:>14.2}   {}",
                name, est.bits, est.density_log2, description
            ),
            None => println!("{:<16} {:>12} {:>14}   {}", name, "none", "-inf", description),
        }
    }
    println!(
        "\npassthrough should leak ≈ {n} bits, mask-odd-bits ≈ {}, rate-limited ≈ {}",
        n / 2,
        n / 4
    );
}
